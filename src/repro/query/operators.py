"""Runtime (per-node) query operators — the engine side of Table I.

Every node participating in a query instantiates the same *fragment*: one
runtime operator per physical operator in the plan, wired parent-to-child
exactly as in the plan, with exchanges (rehash / ship) split into a sender
half (on the producing side) and a receiver half (on the consuming side).
Data flows bottom-up in a push style: sources call ``emit`` which invokes the
parent's ``accept``; when a source finishes it calls ``end_of_stream`` on its
parent, and the notification cascades to the exchange senders, which forward
it over the network.

All operators carry the provenance and phase machinery of Section V-D:

* every :class:`~repro.query.provenance.TaggedRow` carries the set of nodes
  that processed it;
* stateful operators (join hash tables, aggregate groups, exchange caches) can
  ``purge_tainted`` state derived from failed nodes;
* ``reset_for_phase`` re-arms end-of-stream tracking so the same fragment can
  run additional incremental-recovery phases.

Vectorized execution
--------------------
Operators process batches column-at-a-time wherever the work is per-row
bookkeeping rather than per-row semantics: predicates and projections are
compiled once per attribute signature into positional closures over the raw
value tuples (:func:`~repro.query.expressions.compile_expression`), join and
group keys are extracted through precomputed column-index tuples, and taint
tracking takes a batch-level fast path — a batch is only examined row by row
when a failure is actually active (``context.failed_nodes`` non-empty).  All
of this changes *how fast* a batch is processed, never *what* is emitted:
batch boundaries, emitted rows, CPU charges and wire bytes are identical to
the row-at-a-time implementation (the figure benchmarks are byte-compared).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from ..common.errors import PlanError
from ..common.types import Row, Value, partition_hash
from ..common.types import VersionedTuple
from ..common.types import attribute_index
from ..common.types import concat_attributes as _concat_attributes
from .expressions import (
    AggregateSpec,
    Expression,
    compile_columnar,
    compile_expression,
)
from .physical import (
    PhysAggregate,
    PhysHashJoin,
    PhysProject,
    PhysRehash,
    PhysScan,
    PhysSelect,
    PhysShip,
    PhysicalOperator,
    PhysicalPlan,
)
from .provenance import TaggedRow

# Per-row CPU costs (seconds) for the simulator's cost accounting.  They are
# calibrated so that single-node runs of the scaled workloads land in the same
# order of magnitude as the paper's figures; only relative behaviour matters.
COST_SELECT_PER_ROW = 0.15e-6
COST_PROJECT_PER_ROW = 0.25e-6
COST_JOIN_PER_ROW = 0.6e-6
COST_AGGREGATE_PER_ROW = 0.5e-6
COST_REHASH_PER_ROW = 0.35e-6
COST_SCAN_PER_ROW = 0.8e-6


class FragmentContext(Protocol):
    """What runtime operators need from their host (implemented by the query
    service's per-query node context)."""

    address: str
    phase: int
    failed_nodes: set[str]
    provenance_enabled: bool
    #: True when the cluster is large enough that rehash end-of-stream for
    #: destinations that never received data is relayed through the initiator
    #: (one summary per sender, one aggregated marker per destination) instead
    #: of a direct O(n²) fan-out of empty-pair EOS messages.
    eos_relay_enabled: bool

    def charge_cpu(self, seconds: float) -> None: ...

    def destination_for(self, hash_key: int) -> str: ...

    def participants(self) -> list[str]: ...

    def initiator(self) -> str: ...

    def send_rows(
        self, destination: str, exchange_id: int, rows: list[TaggedRow], eos: bool = False
    ) -> None: ...

    def send_eos(self, destination: str, exchange_id: int) -> None: ...

    def send_eos_summary(self, exchange_id: int, zero_destinations: list[str]) -> None: ...


class RuntimeOperator:
    """Base class of all per-node runtime operators."""

    def __init__(self, context: FragmentContext, op_id: int, num_inputs: int = 1) -> None:
        self.context = context
        self.op_id = op_id
        self.num_inputs = num_inputs
        self.parent: "RuntimeOperator | None" = None
        self.parent_input = 0
        self._inputs_done: set[int] = set()
        self.finished = False

    # -- wiring ------------------------------------------------------------------

    def connect(self, parent: "RuntimeOperator", parent_input: int = 0) -> None:
        self.parent = parent
        self.parent_input = parent_input

    def emit(self, rows: list[TaggedRow]) -> None:
        if rows and self.parent is not None:
            self.parent.accept(rows, self.parent_input)

    def emit_eos(self) -> None:
        if self.parent is not None:
            self.parent.end_of_stream(self.parent_input)

    # -- dataflow -----------------------------------------------------------------

    def accept(self, rows: list[TaggedRow], input_index: int = 0) -> None:
        raise NotImplementedError

    def end_of_stream(self, input_index: int = 0) -> None:
        self._inputs_done.add(input_index)
        if len(self._inputs_done) >= self.num_inputs and not self.finished:
            self.finished = True
            self.finish()

    def finish(self) -> None:
        """Called once all inputs reached end-of-stream; default: propagate."""
        self.emit_eos()

    # -- recovery -------------------------------------------------------------------

    def purge_tainted(self, failed: set[str]) -> int:
        """Drop state derived from ``failed`` nodes; returns dropped item count."""
        return 0

    def reset_for_phase(self, phase: int) -> None:
        """Re-arm end-of-stream tracking for a new recovery phase."""
        self._inputs_done.clear()
        self.finished = False


# ---------------------------------------------------------------------------
# Leaf: scan source
# ---------------------------------------------------------------------------


#: Sentinel for a key-row projection onto columns outside the key.
_INVALID_PROJECTION: tuple = (-1,)


class ScanSource(RuntimeOperator):
    """Entry point of scanned tuples into the local fragment.

    Tuples are delivered either by the local data-storage role (distributed
    scan) or by the local index-node role (covering scan).  Delivery is
    idempotent per tuple ID, which makes recovery rescans safe: a tuple that
    was already produced by this node is silently skipped.
    """

    def __init__(self, context: FragmentContext, spec: PhysScan) -> None:
        super().__init__(context, spec.op_id, num_inputs=1)
        self.spec = spec
        self._emitted_ids: set = set()
        self.rows_produced = 0
        # Everything per-row work can be hoisted out of is hoisted here:
        # output columns, projection index tuples and compiled residuals.
        schema = spec.schema
        columns = spec.output_attributes()
        self._columns = columns
        self._schema_attributes = schema.attributes
        self._key_attributes = schema.key
        self._full_projection = (
            None if columns == schema.attributes
            else tuple(schema.index_of(name) for name in columns)
        )
        if columns == schema.key:
            self._key_projection = None
        else:
            try:
                self._key_projection = tuple(
                    schema.key.index(name) for name in columns
                )
            except ValueError:
                # Columns outside the key: only covering scans deliver key
                # rows, and a covering plan never selects such columns.  Keep
                # the original failure surface (KeyError on delivery).
                self._key_projection = _INVALID_PROJECTION
        self._residual_full = (
            None if spec.residual is None
            else compile_expression(spec.residual, schema.attributes)
        )
        self._residual_key = (
            None if spec.residual is None
            else compile_expression(spec.residual, schema.key)
        )

    def deliver_tuples(self, tuples: Sequence[VersionedTuple]) -> None:
        """Distributed scan: full tuples delivered at the data storage node."""
        emitted = self._emitted_ids
        residual = self._residual_full
        projection = self._full_projection
        attributes = self._schema_attributes
        columns = self._columns
        origin = frozenset({self.context.address})
        phase = self.context.phase
        fresh: list[TaggedRow] = []
        append = fresh.append
        for tup in tuples:
            tuple_id = tup.tuple_id
            if tuple_id in emitted:
                continue
            emitted.add(tuple_id)
            values = tup.values
            if residual is not None and not residual(values):
                continue
            if projection is not None:
                row = Row.unchecked(columns, tuple(values[i] for i in projection))
            else:
                row = Row.unchecked(attributes, values)
            append(TaggedRow(row, origin, phase))
        if fresh:
            self.rows_produced += len(fresh)
            self.context.charge_cpu(COST_SCAN_PER_ROW * len(tuples))
            self.emit(fresh)

    def deliver_key_rows(self, tuple_ids: Sequence) -> None:
        """Covering index scan: rows built from tuple IDs at the index node."""
        emitted = self._emitted_ids
        residual = self._residual_key
        projection = self._key_projection
        key_attributes = self._key_attributes
        columns = self._columns
        origin = frozenset({self.context.address})
        phase = self.context.phase
        fresh: list[TaggedRow] = []
        append = fresh.append
        for tid in tuple_ids:
            if tid in emitted:
                continue
            emitted.add(tid)
            key_values = tid.key_values
            if residual is not None and not residual(key_values):
                continue
            if projection is not None:
                if projection is _INVALID_PROJECTION:
                    # Raised only when a row actually survives dedup and the
                    # residual — the point where Row.project used to raise.
                    raise KeyError(
                        f"covering scan of {self.spec.schema.name!r} selects "
                        f"columns outside the key attributes {key_attributes}"
                    )
                row = Row.unchecked(columns, tuple(key_values[i] for i in projection))
            else:
                row = Row.unchecked(key_attributes, key_values)
            append(TaggedRow(row, origin, phase))
        if fresh:
            self.rows_produced += len(fresh)
            self.context.charge_cpu(COST_SCAN_PER_ROW * len(tuple_ids))
            self.emit(fresh)

    def accept(self, rows: list[TaggedRow], input_index: int = 0) -> None:  # pragma: no cover
        raise PlanError("ScanSource has no operator inputs")

    def complete(self) -> None:
        """Called by the query service when all scan producers are done."""
        self.end_of_stream(0)


# ---------------------------------------------------------------------------
# Stateless operators
# ---------------------------------------------------------------------------


class SelectOperator(RuntimeOperator):
    """Selection on intermediate results.

    The predicate is compiled once per input attribute signature into a
    *columnar* evaluator (:func:`~repro.query.expressions.compile_columnar`):
    the batch is transposed into column lists with one C-level ``zip``, the
    predicate produces a boolean mask column, and the mask filters the tagged
    rows.  Rows of one batch share one attribute list by construction (they
    are one operator's output for one destination).
    """

    def __init__(self, context: FragmentContext, spec: PhysSelect) -> None:
        super().__init__(context, spec.op_id)
        self.predicate: Expression = spec.predicate
        self._compiled: dict[tuple[str, ...], Callable] = {}

    def accept(self, rows: list[TaggedRow], input_index: int = 0) -> None:
        self.context.charge_cpu(COST_SELECT_PER_ROW * len(rows))
        if not rows:
            return
        attributes = rows[0].row.attributes
        predicate = self._compiled.get(attributes)
        if predicate is None:
            predicate = self._compiled[attributes] = compile_columnar(
                self.predicate, attributes
            )
        count = len(rows)
        columns = list(zip(*[tagged.row.values for tagged in rows]))
        mask = predicate(columns, count)
        self.emit([tagged for tagged, keep in zip(rows, mask) if keep])


class ProjectOperator(RuntimeOperator):
    """Projection / scalar function evaluation (Project and Compute-function).

    Output expressions are compiled per input attribute signature into
    columnar evaluators; a batch is transposed once, each output column is
    computed as a list, and the output columns are zipped straight back into
    value tuples.  Output rows share one attributes tuple object.
    """

    def __init__(self, context: FragmentContext, spec: PhysProject) -> None:
        super().__init__(context, spec.op_id)
        self.outputs = list(spec.outputs)
        self._attributes = tuple(name for name, _ in self.outputs)
        self._compiled: dict[tuple[str, ...], tuple[Callable, ...]] = {}

    def accept(self, rows: list[TaggedRow], input_index: int = 0) -> None:
        self.context.charge_cpu(COST_PROJECT_PER_ROW * len(rows) * max(1, len(self.outputs)))
        if not rows:
            return
        attributes = rows[0].row.attributes
        compiled = self._compiled.get(attributes)
        if compiled is None:
            compiled = self._compiled[attributes] = tuple(
                compile_columnar(expr, attributes) for _name, expr in self.outputs
            )
        count = len(rows)
        columns = list(zip(*[tagged.row.values for tagged in rows]))
        out_attributes = self._attributes
        unchecked = Row.unchecked
        if compiled:
            output_columns = [fn(columns, count) for fn in compiled]
            value_rows: Sequence[tuple] = list(zip(*output_columns))
        else:
            value_rows = [()] * count  # zero outputs: one empty row per input
        projected = [
            TaggedRow(unchecked(out_attributes, values), tagged.nodes, tagged.phase)
            for tagged, values in zip(rows, value_rows)
        ]
        self.emit(projected)


# ---------------------------------------------------------------------------
# Pipelined hash join
# ---------------------------------------------------------------------------


class HashJoinOperator(RuntimeOperator):
    """Symmetric (pipelined) hash join.

    Both inputs are kept in hash tables keyed by their join-key values, so the
    operator produces results incrementally as rows arrive from either side —
    and, for recovery, retains the in-memory snapshot needed to re-produce
    results without rescanning (Section V-D).
    """

    def __init__(self, context: FragmentContext, spec: PhysHashJoin) -> None:
        super().__init__(context, spec.op_id, num_inputs=2)
        self.spec = spec
        self._tables: tuple[dict, dict] = ({}, {})
        self._key_attrs = (spec.left_keys, spec.right_keys)
        #: (side, input attributes) -> column positions of the join keys.
        self._key_indexes: dict[tuple[int, tuple[str, ...]], tuple[int, ...]] = {}
        self.rows_joined = 0

    def _key_positions(self, side: int, attributes: tuple[str, ...]) -> tuple[int, ...]:
        cache_key = (side, attributes)
        positions = self._key_indexes.get(cache_key)
        if positions is None:
            lookup = attribute_index(attributes)
            positions = self._key_indexes[cache_key] = tuple(
                lookup[name] for name in self._key_attrs[side]
            )
        return positions

    def accept(self, rows: list[TaggedRow], input_index: int = 0) -> None:
        if input_index not in (0, 1):
            raise PlanError("hash join has exactly two inputs")
        self.context.charge_cpu(COST_JOIN_PER_ROW * len(rows))
        if not rows:
            return
        positions = self._key_positions(input_index, rows[0].row.attributes)
        single_key = positions[0] if len(positions) == 1 else None
        own_table = self._tables[input_index]
        other_table = self._tables[1 - input_index]
        this_is_left = input_index == 0
        output: list[TaggedRow] = []
        append = output.append
        unchecked = Row.unchecked
        #: attributes of the joined rows, resolved on the first match of the
        #: batch (both sides' attribute tuples are fixed per plan).
        joined_attributes: tuple[str, ...] | None = None
        for tagged in rows:
            row = tagged.row
            values = row.values
            if single_key is not None:
                key = (values[single_key],)
            else:
                key = tuple([values[i] for i in positions])
            bucket = own_table.get(key)
            if bucket is None:
                own_table[key] = [tagged]
            else:
                bucket.append(tagged)
            matches = other_table.get(key)
            if not matches:
                continue
            # Inlined merge + concat: per output row this costs one tuple
            # add, one provenance union (skipped when both sides carry the
            # same node set) and two slotted allocations.
            nodes = tagged.nodes
            phase = tagged.phase
            if joined_attributes is None:
                other_attributes = matches[0].row.attributes
                if this_is_left:
                    joined_attributes = _concat_attributes(
                        row.attributes, other_attributes
                    )
                else:
                    joined_attributes = _concat_attributes(
                        other_attributes, row.attributes
                    )
            for match in matches:
                match_nodes = match.nodes
                if nodes is match_nodes or nodes == match_nodes:
                    merged_nodes = nodes
                else:
                    merged_nodes = nodes | match_nodes
                merged_phase = phase if phase >= match.phase else match.phase
                if this_is_left:
                    joined_values = values + match.row.values
                else:
                    joined_values = match.row.values + values
                append(TaggedRow(
                    unchecked(joined_attributes, joined_values),
                    merged_nodes, merged_phase,
                ))
        if output:
            self.rows_joined += len(output)
            self.context.charge_cpu(COST_JOIN_PER_ROW * len(output))
            self.emit(output)

    def purge_tainted(self, failed: set[str]) -> int:
        dropped = 0
        for table in self._tables:
            for key in list(table.keys()):
                kept = [row for row in table[key] if not row.tainted_by(failed)]
                dropped += len(table[key]) - len(kept)
                if kept:
                    table[key] = kept
                else:
                    del table[key]
        return dropped

    def state_size(self) -> int:
        return sum(len(rows) for table in self._tables for rows in table.values())


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass
class _SubGroup:
    """Aggregate state for one (group key, contributing node set) pair.

    Partitioning each group into per-node-set sub-groups is what allows
    recovery to drop exactly the contributions of failed nodes without
    touching the rest of the group (Section V-D).
    """

    nodes: frozenset[str]
    states: list[Value]
    phase: int = 0


class AggregateOperator(RuntimeOperator):
    """Blocking hash aggregation with re-aggregation support.

    ``merge_partials`` selects whether the input consists of raw rows (apply
    ``add``) or of partial aggregate states produced by an upstream aggregate
    (apply ``merge``).  Groups are internally partitioned into sub-groups per
    contributing node set to support taint purging.
    """

    def __init__(self, context: FragmentContext, spec: PhysAggregate) -> None:
        super().__init__(context, spec.op_id)
        self.spec = spec
        self.group_by = spec.group_by
        self.aggregates: tuple[AggregateSpec, ...] = spec.aggregates
        self.merge_partials = spec.merge_partials
        # group key -> {node set -> _SubGroup}
        self._groups: dict[tuple, dict[frozenset, _SubGroup]] = {}
        self._dirty: set[tuple] = set()
        self._has_emitted = False
        self._output_attributes = spec.output_attributes()
        #: input attributes -> (group-key column positions, argument closures)
        self._compiled: dict[tuple[str, ...], tuple] = {}

    # -- input ----------------------------------------------------------------------

    def _compiled_for(self, attributes: tuple[str, ...]) -> tuple:
        compiled = self._compiled.get(attributes)
        if compiled is None:
            lookup = attribute_index(attributes)
            key_positions = tuple(lookup[name] for name in self.group_by)
            steps = tuple(
                (
                    index,
                    compile_expression(spec.argument, attributes),
                    spec.function.merge if self.merge_partials else spec.function.add,
                )
                for index, spec in enumerate(self.aggregates)
            )
            initials = tuple(spec.function for spec in self.aggregates)
            compiled = self._compiled[attributes] = (key_positions, steps, initials)
        return compiled

    def accept(self, rows: list[TaggedRow], input_index: int = 0) -> None:
        self.context.charge_cpu(COST_AGGREGATE_PER_ROW * len(rows) * max(1, len(self.aggregates)))
        if not rows:
            return
        key_positions, steps, initials = self._compiled_for(rows[0].row.attributes)
        single_key = key_positions[0] if len(key_positions) == 1 else None
        groups = self._groups
        dirty = self._dirty
        for tagged in rows:
            values = tagged.row.values
            if single_key is not None:
                group_key = (values[single_key],)
            else:
                group_key = tuple([values[i] for i in key_positions])
            subgroups = groups.get(group_key)
            if subgroups is None:
                subgroups = groups[group_key] = {}
            nodes = tagged.nodes
            subgroup = subgroups.get(nodes)
            if subgroup is None:
                subgroup = subgroups[nodes] = _SubGroup(
                    nodes=nodes,
                    states=[function.initial() for function in initials],
                    phase=tagged.phase,
                )
            if tagged.phase > subgroup.phase:
                subgroup.phase = tagged.phase
            states = subgroup.states
            for index, argument, combine in steps:
                states[index] = combine(states[index], argument(values))
            dirty.add(group_key)

    # -- output ----------------------------------------------------------------------

    def finish(self) -> None:
        """Emit aggregate rows.

        On the first completion every group is emitted.  On later completions
        (incremental-recovery phases) only the groups whose state changed
        since the previous emission are re-emitted; the downstream collector
        replaces the previous values for those groups.

        Partial aggregates emit **one row per sub-group** (per contributing
        node set) rather than merging sub-groups: the downstream aggregate or
        collector merges them anyway, and keeping them separate means a later
        taint purge drops exactly the failed nodes' contributions instead of
        entangling them with healthy ones (the point of the sub-group scheme
        in Section V-D).
        """
        groups_to_emit = (
            set(self._groups.keys()) if not self._has_emitted else set(self._dirty)
        )
        output: list[TaggedRow] = []
        for group_key in sorted(groups_to_emit, key=repr):
            subgroups = self._groups.get(group_key)
            if not subgroups:
                continue
            if self.merge_partials:
                merged_states = [spec.function.initial() for spec in self.aggregates]
                contributing: frozenset[str] = frozenset()
                for subgroup in subgroups.values():
                    contributing |= subgroup.nodes
                    for index, spec in enumerate(self.aggregates):
                        merged_states[index] = spec.function.merge(
                            merged_states[index], subgroup.states[index]
                        )
                values = tuple(group_key) + tuple(
                    spec.function.result(state)
                    for spec, state in zip(self.aggregates, merged_states)
                )
                row = Row(self._output_attributes, values)
                output.append(TaggedRow(
                    row, contributing | {self.context.address}, self.context.phase
                ))
            else:
                # Partial aggregation: one row of mergeable states per sub-group.
                for subgroup in subgroups.values():
                    values = tuple(group_key) + tuple(subgroup.states)
                    row = Row(self._output_attributes, values)
                    output.append(TaggedRow(
                        row,
                        subgroup.nodes | {self.context.address},
                        self.context.phase,
                    ))
        self._has_emitted = True
        self._dirty.clear()
        if not self.merge_partials:
            # Partial aggregates emit deltas: once shipped, the accumulated
            # state must not be re-shipped in a later phase, so clear it.
            self._groups.clear()
        self.emit(output)
        self.emit_eos()

    # -- recovery ---------------------------------------------------------------------

    def purge_tainted(self, failed: set[str]) -> int:
        dropped = 0
        for group_key in list(self._groups.keys()):
            subgroups = self._groups[group_key]
            for node_set in list(subgroups.keys()):
                if node_set & failed:
                    del subgroups[node_set]
                    dropped += 1
                    self._dirty.add(group_key)
            if not subgroups:
                del self._groups[group_key]
        return dropped

    def group_count(self) -> int:
        return len(self._groups)


# ---------------------------------------------------------------------------
# Exchanges: rehash and ship senders, exchange receivers
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _CachedRow:
    """A sent row remembered for possible re-transmission during recovery."""

    tagged: TaggedRow
    destination: str
    hash_key: int | None


class ExchangeSender(RuntimeOperator):
    """Common machinery of the rehash and ship senders: batching, caching of
    sent rows (the downstream cache of Section V-D) and end-of-stream fan-out."""

    BATCH_ROWS = 256

    def __init__(self, context: FragmentContext, op_id: int) -> None:
        super().__init__(context, op_id)
        self._buffers: dict[str, list[TaggedRow]] = {}
        self._cache: list[_CachedRow] = []
        #: Destinations this sender has shipped at least one data batch to, in
        #: any phase.  Deliberately never reset across recovery phases: a
        #: destination with prior-phase data may still have batches in flight
        #: on the pair channel, so its EOS must ride the same channel (FIFO)
        #: rather than the initiator relay, which could overtake them.
        self._sent_destinations: set[str] = set()
        self.rows_sent = 0
        self.batches_sent = 0

    # Subclasses decide where a row goes.
    def route(self, tagged: TaggedRow) -> tuple[str, int | None]:
        raise NotImplementedError

    def accept(self, rows: list[TaggedRow], input_index: int = 0) -> None:
        self.context.charge_cpu(COST_REHASH_PER_ROW * len(rows))
        if not rows:
            return
        route = self.route_batch(rows)
        buffers = self._buffers
        cache_append = self._cache.append
        batch_limit = self.BATCH_ROWS
        for tagged, (destination, hash_key) in zip(rows, route):
            cache_append(_CachedRow(tagged, destination, hash_key))
            buffer = buffers.get(destination)
            if buffer is None:
                buffer = buffers[destination] = []
            buffer.append(tagged)
            if len(buffer) >= batch_limit:
                self._flush_destination(destination)

    def route_batch(self, rows: list[TaggedRow]) -> list[tuple[str, int | None]]:
        """Route a whole batch; subclasses override with columnar fast paths.

        The default delegates to :meth:`route` row by row, so custom senders
        that only implement ``route`` keep working.
        """
        return [self.route(tagged) for tagged in rows]

    def _flush_destination(self, destination: str) -> None:
        buffer = self._buffers.get(destination)
        if buffer:
            self._sent_destinations.add(destination)
            self.context.send_rows(destination, self.op_id, buffer)
            self.rows_sent += len(buffer)
            self.batches_sent += 1
            self._buffers[destination] = []

    def flush_all(self) -> None:
        for destination in list(self._buffers.keys()):
            self._flush_destination(destination)

    def finish(self) -> None:
        # End-of-stream piggybacks on the final residual batch where one
        # exists: a separate EOS message is mostly fixed per-message framing,
        # so folding the marker into the last ``query.data`` cast (a one-byte
        # flag) saves a whole control message per (sender, destination) pair.
        # Destinations with nothing left buffered still get an explicit EOS —
        # directly when data went to them earlier (the EOS must trail that
        # data on the pair channel), or via the initiator relay for
        # destinations that never saw a row from this sender, turning the
        # O(n²) empty-pair fan-out into O(n) summaries on large clusters.
        needs_eos = set(self.eos_destinations())
        for destination in list(self._buffers.keys()):
            buffer = self._buffers.get(destination)
            if buffer and destination in needs_eos:
                needs_eos.discard(destination)
                self._sent_destinations.add(destination)
                self.context.send_rows(destination, self.op_id, buffer, eos=True)
                self.rows_sent += len(buffer)
                self.batches_sent += 1
                self._buffers[destination] = []
        self.flush_all()
        relay = self.use_eos_summary()
        zero: list[str] = []
        for destination in self.eos_destinations():
            if destination not in needs_eos:
                continue
            if relay and destination not in self._sent_destinations:
                zero.append(destination)
            else:
                self.context.send_eos(destination, self.op_id)
        if relay:
            # Always reported, even with an empty zero list: the initiator
            # relays a destination's aggregated marker only once *every*
            # expected sender has reported, so silence would stall the relay.
            self.context.send_eos_summary(self.op_id, zero)

    def eos_destinations(self) -> list[str]:
        raise NotImplementedError

    def use_eos_summary(self) -> bool:
        """Whether end-of-stream for never-sent-to destinations goes through
        the initiator relay (rehash senders on large clusters only)."""
        return False

    # -- recovery -----------------------------------------------------------------------

    def purge_tainted(self, failed: set[str]) -> int:
        before = len(self._cache)
        self._cache = [entry for entry in self._cache if not entry.tagged.tainted_by(failed)]
        for destination, buffer in self._buffers.items():
            self._buffers[destination] = [
                row for row in buffer if not row.tainted_by(failed)
            ]
        return before - len(self._cache)

    def resend_for_failed(self, failed: set[str]) -> int:
        """Re-transmit cached rows whose original destination failed.

        The rows are re-routed under the *current* snapshot (the context
        already holds the post-failure routing) and stamped with the current
        phase.  Returns the number of rows re-sent.
        """
        resent: dict[str, list[TaggedRow]] = {}
        for entry in self._cache:
            if entry.destination not in failed:
                continue
            new_destination, new_hash = self._reroute(entry)
            refreshed = entry.tagged.with_phase(self.context.phase)
            resent.setdefault(new_destination, []).append(refreshed)
            entry.destination = new_destination
            entry.tagged = refreshed
        count = 0
        for destination, rows in resent.items():
            self._sent_destinations.add(destination)
            self.context.send_rows(destination, self.op_id, rows)
            count += len(rows)
            self.rows_sent += len(rows)
            self.batches_sent += 1
        return count

    def _reroute(self, entry: _CachedRow) -> tuple[str, int | None]:
        return self.route(entry.tagged)

    def cache_size(self) -> int:
        return len(self._cache)


class RehashSender(ExchangeSender):
    """Partition the input across all participants by hashing key attributes.

    Routing a batch extracts the key columns through precomputed positions
    and resolves each distinct key's ring position once per batch — repeated
    keys (skewed joins, group-bys) hit the per-batch memo, and the
    ``partition_hash`` memo absorbs repeats across batches.
    """

    def __init__(self, context: FragmentContext, spec: PhysRehash) -> None:
        super().__init__(context, spec.op_id)
        self.keys = spec.keys
        self._key_indexes: dict[tuple[str, ...], tuple[int, ...]] = {}

    def route(self, tagged: TaggedRow) -> tuple[str, int]:
        key_values = tuple(tagged.row[attr] for attr in self.keys)
        hash_key = partition_hash(key_values)
        return self.context.destination_for(hash_key), hash_key

    def route_batch(self, rows: list[TaggedRow]) -> list[tuple[str, int]]:
        attributes = rows[0].row.attributes
        positions = self._key_indexes.get(attributes)
        if positions is None:
            lookup = attribute_index(attributes)
            positions = self._key_indexes[attributes] = tuple(
                lookup[name] for name in self.keys
            )
        single_key = positions[0] if len(positions) == 1 else None
        destination_for = self.context.destination_for
        routed: dict[tuple, tuple[str, int]] = {}
        result: list[tuple[str, int]] = []
        append = result.append
        for tagged in rows:
            values = tagged.row.values
            if single_key is not None:
                key_values = (values[single_key],)
            else:
                key_values = tuple([values[i] for i in positions])
            target = routed.get(key_values)
            if target is None:
                hash_key = partition_hash(key_values)
                target = routed[key_values] = (destination_for(hash_key), hash_key)
            append(target)
        return result

    def eos_destinations(self) -> list[str]:
        return self.context.participants()

    def use_eos_summary(self) -> bool:
        return self.context.eos_relay_enabled


class ShipSender(ExchangeSender):
    """Send every input row to the query initiator."""

    def __init__(self, context: FragmentContext, spec: PhysShip) -> None:
        super().__init__(context, spec.op_id)

    def route(self, tagged: TaggedRow) -> tuple[str, None]:
        return self.context.initiator(), None

    def route_batch(self, rows: list[TaggedRow]) -> list[tuple[str, None]]:
        return [(self.context.initiator(), None)] * len(rows)

    def eos_destinations(self) -> list[str]:
        return [self.context.initiator()]


class ExchangeReceiver(RuntimeOperator):
    """Receiving half of a rehash exchange on one node.

    Incoming rows are tagged with the local node (they have now been processed
    here) and forwarded to the exchange's parent operator.  The receiver
    tracks end-of-stream notifications from every sender; when all expected
    senders for the current phase are done it signals end-of-stream upward.
    """

    def __init__(self, context: FragmentContext, exchange_id: int) -> None:
        super().__init__(context, exchange_id, num_inputs=1)
        self.exchange_id = exchange_id
        #: End-of-stream notifications received, as (sender, phase) pairs.
        #: Stale phase-0 notifications that are still in flight when recovery
        #: starts must not count towards the recovery phase's completion.
        self._eos_senders: set[tuple[str, int]] = set()
        self._expected_senders: set[str] = set(context.participants())
        #: Expected senders still outstanding for ``_pending_phase``, kept
        #: incrementally so the per-EOS completion check stays O(1) instead
        #: of rebuilding two O(participants) sets each time.  Invalidated on
        #: phase change and on reset_for_phase.
        self._pending: set[str] | None = None
        self._pending_phase = -1
        self.rows_received = 0

    def accept(self, rows: list[TaggedRow], input_index: int = 0) -> None:
        failed = self.context.failed_nodes
        if not failed:
            # Batch fast path: no active failure, nothing can be tainted.
            live = rows
        elif any(row.nodes & failed for row in rows):
            # A failure intersects this batch: fall back to per-row taint.
            live = [row for row in rows if not row.nodes & failed]
        else:
            live = rows
        if not live:
            return
        self.rows_received += len(live)
        # Rows of a batch share a handful of distinct provenance sets; the
        # per-batch memo tags each distinct set with this node once.
        address = self.context.address
        retagged: dict[frozenset, frozenset] = {}
        tagged_here: list[TaggedRow] = []
        append = tagged_here.append
        for row in live:
            nodes = row.nodes
            new_nodes = retagged.get(nodes)
            if new_nodes is None:
                new_nodes = retagged[nodes] = (
                    nodes if address in nodes else nodes | {address}
                )
            append(row if new_nodes is nodes else TaggedRow(row.row, new_nodes, row.phase))
        self.emit(tagged_here)

    def sender_eos(self, sender: str, phase: int = 0) -> None:
        self._eos_senders.add((sender, phase))
        if self._pending is not None and self._pending_phase == phase:
            self._pending.discard(sender)
        self._check_done()

    def _check_done(self) -> None:
        if self.finished:
            return
        # Equivalent to (expected - failed) <= received(current phase),
        # restated as pending <= failed with pending := expected - received.
        phase = self.context.phase
        pending = self._pending
        if pending is None or self._pending_phase != phase:
            received = {s for s, p in self._eos_senders if p == phase}
            pending = {s for s in self._expected_senders if s not in received}
            self._pending = pending
            self._pending_phase = phase
        if pending:
            failed = self.context.failed_nodes
            if len(pending) > len(failed) or pending - failed:
                return
        self.finished = True
        self.emit_eos()

    def sender_failed(self, address: str) -> None:
        """A sender failed: it will never send EOS, stop waiting for it."""
        self._check_done()

    def reset_for_phase(self, phase: int) -> None:
        super().reset_for_phase(phase)
        self._expected_senders = {
            address for address in self.context.participants()
            if address not in self.context.failed_nodes
        }
        self._pending = None


# ---------------------------------------------------------------------------
# Fragment assembly
# ---------------------------------------------------------------------------


@dataclass
class Fragment:
    """All runtime operators of one query on one node."""

    operators: dict[int, RuntimeOperator]
    scan_sources: dict[int, ScanSource]
    senders: dict[int, ExchangeSender]
    receivers: dict[int, ExchangeReceiver]

    def purge_tainted(self, failed: set[str]) -> int:
        return sum(op.purge_tainted(failed) for op in self.operators.values())

    def reset_for_phase(self, phase: int) -> None:
        for op in self.operators.values():
            op.reset_for_phase(phase)


def build_fragment(plan: PhysicalPlan, context: FragmentContext) -> Fragment:
    """Instantiate the runtime operators of ``plan`` for one node."""
    operators: dict[int, RuntimeOperator] = {}
    scan_sources: dict[int, ScanSource] = {}
    senders: dict[int, ExchangeSender] = {}
    receivers: dict[int, ExchangeReceiver] = {}

    def build(op: PhysicalOperator) -> RuntimeOperator:
        """Build the runtime operator for ``op``; returns the operator whose
        output feeds ``op``'s parent (for exchanges this is the receiver)."""
        if isinstance(op, PhysScan):
            runtime: RuntimeOperator = ScanSource(context, op)
            scan_sources[op.op_id] = runtime  # type: ignore[assignment]
        elif isinstance(op, PhysSelect):
            runtime = SelectOperator(context, op)
            build(op.child).connect(runtime, 0)
        elif isinstance(op, PhysProject):
            runtime = ProjectOperator(context, op)
            build(op.child).connect(runtime, 0)
        elif isinstance(op, PhysHashJoin):
            runtime = HashJoinOperator(context, op)
            build(op.left).connect(runtime, 0)
            build(op.right).connect(runtime, 1)
        elif isinstance(op, PhysAggregate):
            runtime = AggregateOperator(context, op)
            build(op.child).connect(runtime, 0)
        elif isinstance(op, PhysRehash):
            sender = RehashSender(context, op)
            build(op.child).connect(sender, 0)
            senders[op.op_id] = sender
            operators[-op.op_id] = sender  # keep sender reachable for purging
            receiver = ExchangeReceiver(context, op.op_id)
            receivers[op.op_id] = receiver
            runtime = receiver
        elif isinstance(op, PhysShip):
            sender = ShipSender(context, op)
            build(op.child).connect(sender, 0)
            senders[op.op_id] = sender
            runtime = sender
        else:
            raise PlanError(f"unknown physical operator {type(op).__name__}")
        operators[op.op_id] = runtime
        return runtime

    build(plan.root)
    return Fragment(operators, scan_sources, senders, receivers)
