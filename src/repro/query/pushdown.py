"""Wire-traffic pushdown machinery: scan descriptors and page pruning.

The wire-traffic optimizer rests on two plan-time analyses that both live
here because the optimizer *and* the storage layer need them:

Serializable scan descriptors
    A predicate pushed into a leaf scan must travel to index and data nodes
    as part of the plan, so it needs an honest wire representation — not an
    opaque Python closure.  :class:`ScanPredicate` pairs an expression tree
    with the attribute signature it is evaluated against; the receiving node
    compiles it positionally (:func:`~repro.query.expressions.compile_expression`,
    so NULL semantics match the engine exactly), and
    :func:`expression_wire_size` prices the descriptor for the traffic
    accounting the figures report.

Page pruning (key-range / hash-partition analysis)
    Index pages cover *hash ranges* of the partition-key values
    (:class:`~repro.storage.pages.PageRef`), so a sargable predicate that
    pins the partition-key attributes to a finite candidate set — equality,
    ``IN`` lists, and OR-combinations of those — maps to a finite set of ring
    positions.  A page whose hash range contains none of them provably holds
    no matching tuple ID and is never requested.
    :func:`candidate_partition_hashes` performs the analysis; it returns
    ``None`` whenever the predicate does not provably bound the partition
    key (range conjuncts, arithmetic, attributes outside the partition key),
    so pruning is always sound: every returned candidate set is a superset
    of the hash keys a matching tuple can have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..common.serialization import EncodedTupleBatch
from ..common.types import Value, estimate_values_size, partition_hash
from .expressions import (
    Arithmetic,
    BooleanOp,
    Column,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    Literal,
    compile_expression,
    split_conjuncts,
)

#: Cap on the enumerated partition-key combinations.  A predicate that pins
#: the partition key to more candidates than this is treated as unprunable —
#: the candidate list itself would start to rival the page list it prunes.
MAX_PRUNE_CANDIDATES = 64


# ---------------------------------------------------------------------------
# Descriptor sizing
# ---------------------------------------------------------------------------


def expression_wire_size(expression: Expression | None) -> int:
    """Estimated serialized size of an expression tree in bytes.

    Mirrors a compact prefix encoding: one tag byte per node, column names as
    length-prefixed UTF-8, literals priced like row values
    (:func:`~repro.common.types.estimate_values_size`).  This is what plan
    dissemination and scan-spec messages charge for shipping a pushed
    predicate, so the committed traffic figures account for the descriptor —
    pushing a huge predicate is not free.
    """
    if expression is None:
        return 0
    if isinstance(expression, Column):
        return 1 + 2 + len(expression.name.encode("utf-8"))
    if isinstance(expression, Literal):
        return 1 + estimate_values_size((expression.value,))
    if isinstance(expression, (Comparison, Arithmetic)):
        return (
            2  # tag + operator byte
            + expression_wire_size(expression.left)
            + expression_wire_size(expression.right)
        )
    if isinstance(expression, BooleanOp):
        return 2 + sum(expression_wire_size(op) for op in expression.operands)
    if isinstance(expression, InList):
        return (
            2
            + expression_wire_size(expression.operand)
            + estimate_values_size(expression.values)
        )
    if isinstance(expression, FunctionCall):
        return (
            1 + 2 + len(expression.name.encode("utf-8"))
            + sum(expression_wire_size(a) for a in expression.arguments)
        )
    # Unknown subclass: charge its repr (what the fingerprint machinery uses).
    return 1 + 2 + len(repr(expression).encode("utf-8"))


def columns_wire_size(columns: Sequence[str]) -> int:
    """Wire size of a projection column list (length-prefixed names)."""
    return 2 + sum(2 + len(name.encode("utf-8")) for name in columns)


# ---------------------------------------------------------------------------
# Serializable predicate descriptor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanPredicate:
    """A predicate shipped to index/data nodes as a plan descriptor.

    ``attributes`` is the signature the expression is evaluated against —
    the schema's key attributes for an index-side (sargable) predicate, the
    full attribute list for a data-side one.  The receiving node compiles the
    expression positionally against that signature, so evaluation semantics
    (NULL comparisons false, NULL arithmetic propagating, missing-attribute
    errors at call time) are exactly the engine's.
    """

    expression: Expression
    attributes: tuple[str, ...]

    def __init__(self, expression: Expression, attributes: Sequence[str]):
        object.__setattr__(self, "expression", expression)
        object.__setattr__(self, "attributes", tuple(attributes))

    def compile(self) -> Callable[[Sequence[Value]], bool]:
        """Positional evaluator over raw value tuples (cached per instance)."""
        compiled = self.__dict__.get("_compiled")
        if compiled is None:
            evaluator = compile_expression(self.expression, self.attributes)
            def compiled(values: Sequence[Value]) -> bool:
                return bool(evaluator(values))
            object.__setattr__(self, "_compiled", compiled)
        return compiled

    def references(self) -> frozenset[str]:
        return self.expression.references()

    def estimated_size(self) -> int:
        return expression_wire_size(self.expression) + columns_wire_size(self.attributes)

    def __repr__(self) -> str:
        return f"ScanPredicate({self.expression!r} over {list(self.attributes)})"


@dataclass(frozen=True)
class ScanProjection:
    """A projection shipped to data nodes alongside a retrieval.

    ``attributes`` is the relation's full attribute signature (what a stored
    tuple's values follow), ``columns`` the subset (and order) to keep.
    Projected tuples carry their values in ``columns`` order.
    """

    attributes: tuple[str, ...]
    columns: tuple[str, ...]

    def __init__(self, attributes: Sequence[str], columns: Sequence[str]):
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "columns", tuple(columns))
        for name in self.columns:
            if name not in self.attributes:
                raise ValueError(
                    f"projected column {name!r} not in attributes {self.attributes}"
                )

    def positions(self) -> tuple[int, ...]:
        cached = self.__dict__.get("_positions")
        if cached is None:
            cached = tuple(self.attributes.index(name) for name in self.columns)
            object.__setattr__(self, "_positions", cached)
        return cached

    def apply(self, values: Sequence[Value]) -> tuple[Value, ...]:
        return tuple(values[i] for i in self.positions())

    def estimated_size(self) -> int:
        return columns_wire_size(self.columns)

    def __repr__(self) -> str:
        return f"ScanProjection({list(self.columns)})"


def predicate_callable(
    predicate: "ScanPredicate | Callable[[Sequence[Value]], bool] | None",
) -> Callable[[Sequence[Value]], bool] | None:
    """Normalise a predicate parameter to a callable.

    Storage handlers accept either a serializable :class:`ScanPredicate`
    (what the engine ships) or a plain callable (the legacy test/driver API —
    an opaque closure the traffic accounting prices at a flat minimum).
    """
    if predicate is None:
        return None
    if isinstance(predicate, ScanPredicate):
        return predicate.compile()
    return predicate


def predicate_wire_size(
    predicate: "ScanPredicate | Callable[[Sequence[Value]], bool] | None",
) -> int:
    """Wire size charged for shipping ``predicate`` in a scan message."""
    if predicate is None:
        return 0
    if isinstance(predicate, ScanPredicate):
        return predicate.estimated_size()
    return 16  # opaque callable: framing only (legacy API, sizes unknowable)


# ---------------------------------------------------------------------------
# Page pruning: feasible partition-key analysis
# ---------------------------------------------------------------------------


def _constant_of(expression: Expression) -> tuple[bool, Value]:
    if isinstance(expression, Literal):
        return True, expression.value
    return False, None


def _candidate_values(conjunct: Expression, attribute: str) -> set | None:
    """Values ``attribute`` can take under ``conjunct``; None = unbounded.

    Sound by construction: the returned set is a *superset* of the values of
    ``attribute`` in any row satisfying the conjunct.  Shapes that do not
    provably bound the attribute (ranges, arithmetic, references to other
    attributes) return ``None``.
    """
    if isinstance(conjunct, Comparison) and conjunct.operator == "=":
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Column) and left.name == attribute:
            constant, value = _constant_of(right)
            if constant:
                return {value}
        if isinstance(right, Column) and right.name == attribute:
            constant, value = _constant_of(left)
            if constant:
                return {value}
        return None
    if isinstance(conjunct, InList):
        operand = conjunct.operand
        if isinstance(operand, Column) and operand.name == attribute:
            return set(conjunct.values)
        return None
    if isinstance(conjunct, BooleanOp) and conjunct.operator == "or":
        # A disjunction bounds the attribute only if *every* disjunct does.
        union: set = set()
        for operand in conjunct.operands:
            values = _candidate_values(operand, attribute)
            if values is None:
                return None
            union |= values
        return union
    if isinstance(conjunct, BooleanOp) and conjunct.operator == "and":
        merged: set | None = None
        for operand in conjunct.operands:
            values = _candidate_values(operand, attribute)
            if values is None:
                continue
            merged = values if merged is None else merged & values
        return merged
    return None


def _equal_hash_variants(value: Value) -> set:
    """Every value that compares *equal* to ``value`` but hashes differently.

    The placement hash distinguishes types Python equality conflates
    (``42 == 42.0 == True`` for 1, ``0.0 == -0.0``), while predicate
    evaluation uses plain ``==``.  A stored key of any equal-comparing
    variant satisfies an equality predicate on ``value``, so pruning must
    keep the pages of *all* variants or it would provably-wrongly skip a
    matching tuple.  Non-numeric values have no cross-type equalities.

    Returns a set of ``((type, repr), value)`` pairs — see the comment below
    for why the values cannot live in a plain set.
    """
    # Keyed by (type, repr): a plain set would collapse the variants right
    # back together (``{1, 1.0, True}`` is ``{1}`` — Python set membership
    # uses the very equality whose hash-divergence this function exists for).
    variants: dict = {(type(value), repr(value)): value}

    def add(v) -> None:
        variants[(type(v), repr(v))] = v

    if isinstance(value, (bool, int, float)):
        if isinstance(value, float):
            as_float = value
            if value.is_integer():
                as_int = int(value)
                add(as_int)
                if as_int in (0, 1):
                    add(as_int == 1)
        else:
            try:
                as_float = float(value)
            except OverflowError:
                as_float = None
            if as_float is not None and as_float == value:
                add(as_float)
            add(int(value))
            if value == 0 or value == 1:
                add(value == 1)
        if as_float is not None and as_float == 0.0:
            add(0.0)
            add(-0.0)
    return set(variants.items())


def candidate_partition_hashes(
    predicate: Expression | None,
    partition_key: Sequence[str],
    limit: int = MAX_PRUNE_CANDIDATES,
) -> tuple[int, ...] | None:
    """Ring positions a tuple matching ``predicate`` can be stored at.

    Returns a sorted tuple of candidate :func:`partition_hash` values when the
    predicate provably bounds *every* partition-key attribute to a finite
    candidate set of at most ``limit`` combinations; ``None`` when it does
    not (in which case no pruning is possible).  An empty tuple means the
    predicate is unsatisfiable over the partition key (contradictory
    equalities) and *every* page can be pruned.
    """
    if predicate is None or not partition_key:
        return None
    conjuncts = split_conjuncts(predicate)
    per_attribute: list[set] = []
    try:
        for attribute in partition_key:
            merged: set | None = None
            for conjunct in conjuncts:
                values = _candidate_values(conjunct, attribute)
                if values is None:
                    continue
                merged = values if merged is None else merged & values
            if merged is None:
                return None  # this partition-key attribute is unbounded
            per_attribute.append(merged)
    except TypeError:
        # Unhashable literals (e.g. list values, which the expression layer
        # fully supports) cannot enter the candidate sets; the predicate
        # still evaluates fine at the index nodes, so just don't prune.
        return None

    combinations: list[tuple[Value, ...]] = [()]
    for values in per_attribute:
        if not values:
            return ()  # contradiction: no tuple can match
        # Expand every candidate to its equal-comparing hash variants
        # (1 == 1.0 == True hash to three different ring positions, and a
        # stored key of any of them would satisfy the predicate).  The
        # variants are (type, repr)-keyed pairs so distinct-hashing values
        # Python considers equal survive the set union.
        expanded: set = set()
        for value in values:
            expanded |= _equal_hash_variants(value)
        ordered = [
            pair[1]
            for pair in sorted(expanded, key=lambda p: (p[0][1], p[0][0].__name__))
        ]
        combinations = [
            prefix + (value,) for prefix in combinations for value in ordered
        ]
        if len(combinations) > limit:
            return None
    hashes = sorted({partition_hash(combo) for combo in combinations})
    return tuple(hashes)


# ---------------------------------------------------------------------------
# Predicate evaluation over encoded columns
# ---------------------------------------------------------------------------


_FLIPPED_COMPARISON = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _simple_bound(conjunct: Expression, attribute: str):
    """``(operator, literal)`` for ``col op lit`` shapes; None otherwise.

    ``op`` is normalised so the column is on the left; ``IN`` lists come back
    as ``("in", values)``.  Only these shapes participate in the min/max
    batch-skip analysis — everything else still evaluates exactly, just
    per-dictionary-entry / per-run instead of O(1).
    """
    if isinstance(conjunct, Comparison):
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Column) and left.name == attribute and isinstance(right, Literal):
            return conjunct.operator, right.value
        if isinstance(right, Column) and right.name == attribute and isinstance(left, Literal):
            return _FLIPPED_COMPARISON[conjunct.operator], left.value
        return None
    if isinstance(conjunct, InList) and isinstance(conjunct.operand, Column):
        return "in", conjunct.values
    return None


def _bounds_exclude(op: str, literal, lo, hi) -> bool:
    """True when ``col op literal`` provably matches nothing in [lo, hi].

    ``lo``/``hi`` are tight (the actual min/max of the stored values), so
    ``lo == hi`` means every value equals ``lo``.  Any cross-type comparison
    that raises makes the check inconclusive — never unsound.
    """
    try:
        if op == "=":
            return bool(literal < lo or literal > hi)
        if op == "<":
            return bool(lo >= literal)
        if op == "<=":
            return bool(lo > literal)
        if op == ">":
            return bool(hi <= literal)
        if op == ">=":
            return bool(hi < literal)
        if op == "!=":
            return bool(lo == hi and lo == literal)
        if op == "in":
            return all(value is None or value < lo or value > hi for value in literal)
    except TypeError:
        return False
    return False


def _unary_test(conjunct: Expression, attribute: str) -> Callable[[Value], bool]:
    """Compile a single-column conjunct into a value test.

    Compiling through :func:`compile_expression` keeps evaluation semantics
    — NULL comparisons false, Python ``==`` conflating ``1``/``1.0``/``True``
    — exactly the engine's, so translating a literal against a dictionary or
    run value decides precisely what row-at-a-time evaluation would.
    """
    evaluator = compile_expression(conjunct, (attribute,))

    def test(value: Value) -> bool:
        return bool(evaluator((value,)))

    return test


def encoded_match_positions(
    predicate: ScanPredicate, batch: EncodedTupleBatch
) -> "tuple[list[int] | None, list[Expression]]":
    """Evaluate a pushed predicate directly over an encoded batch.

    Returns ``(positions, residual)``.  ``positions`` is the sorted list of
    row positions that may satisfy the predicate (``None`` means every row —
    nothing was decidable *and* nothing was excluded), computed entirely from
    the encoded form: equality/IN translate the literal against dictionary
    codes, ranges check frame-of-reference bounds and RLE runs, and a batch
    whose bounds provably cannot match is rejected without touching a single
    value.  ``residual`` holds the conjuncts that could not be decided over
    the encoded columns; the caller re-evaluates them after decoding the
    surviving positions (sound, because conjuncts only ever shrink the
    match set).  Columns are addressed by position in ``predicate.attributes``.
    """
    attributes = predicate.attributes
    conjuncts = split_conjuncts(predicate.expression)
    positions: "list[int] | None" = None
    residual: list[Expression] = []
    for conjunct in conjuncts:
        references = conjunct.references()
        if len(references) != 1:
            residual.append(conjunct)
            continue
        (name,) = references
        try:
            index = attributes.index(name)
        except ValueError:
            residual.append(conjunct)
            continue
        if index >= len(batch.columns):
            residual.append(conjunct)
            continue
        column = batch.columns[index]
        simple = _simple_bound(conjunct, name)
        if simple is not None:
            op, literal = simple
            if op != "in" and literal is None:
                return [], []  # NULL comparisons are false for every row
            bounds = column.min_max()
            if bounds is not None and _bounds_exclude(op, literal, *bounds):
                return [], []
        matched = column.match_positions(_unary_test(conjunct, name))
        if matched is None:
            residual.append(conjunct)
            continue
        if positions is None:
            positions = matched
        else:
            matched_set = set(matched)
            positions = [p for p in positions if p in matched_set]
        if not positions:
            return [], []
    return positions, residual


def conjunction_callable(
    conjuncts: Sequence[Expression], attributes: Sequence[str]
) -> "Callable[[Sequence[Value]], bool] | None":
    """Compile leftover conjuncts back into one positional row filter."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        expression = conjuncts[0]
    else:
        expression = BooleanOp("and", tuple(conjuncts))
    evaluator = compile_expression(expression, tuple(attributes))

    def row_filter(values: Sequence[Value]) -> bool:
        return bool(evaluator(values))

    return row_filter


def prune_page_refs(pages, hashes: Sequence[int] | None):
    """Split ``pages`` into (kept, pruned-count) under the candidate hashes.

    ``hashes is None`` keeps everything (no pruning possible).  A kept page's
    hash range contains at least one candidate; a pruned page's range
    provably cannot contain the hash key of any matching tuple.
    """
    if hashes is None:
        return list(pages), 0
    kept = [
        ref
        for ref in pages
        if any(ref.hash_range.contains(hash_key) for hash_key in hashes)
    ]
    return kept, len(pages) - len(kept)
