"""A single-block SQL frontend.

The paper's optimizer "currently handles single-block SQL queries, including
function evaluation and grouping".  This module provides the matching parser:
one ``SELECT`` block with an optional ``WHERE`` conjunction, ``GROUP BY``,
``ORDER BY`` and ``LIMIT`` — no subqueries, no ``UNION``, no outer joins.
Attribute names must be unique across the referenced relations (TPC-H and the
STBenchmark schemas satisfy this by prefixing attribute names).

``parse_query`` produces a :class:`~repro.query.logical.LogicalQuery` that the
optimizer compiles to a distributed physical plan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..common.errors import SQLSyntaxError
from ..common.types import Schema
from .expressions import (
    AGGREGATES,
    AggregateSpec,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    and_,
    col,
    lit,
    not_,
    or_,
)
from .logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<number>\d+\.\d+|\d+)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9\.]*)"
    r"|(?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*|\+|-|/|;))"
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "and", "or", "not",
    "as", "asc", "desc", "in", "between", "having", "distinct",
}


@dataclass
class _Token:
    kind: str  # "number" | "string" | "name" | "op" | "keyword"
    value: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    stripped = text.strip()
    while position < len(stripped):
        match = _TOKEN_PATTERN.match(stripped, position)
        if match is None:
            raise SQLSyntaxError(f"cannot tokenize SQL near: {stripped[position:position + 20]!r}")
        position = match.end()
        if match.lastgroup == "number":
            tokens.append(_Token("number", match.group("number")))
        elif match.lastgroup == "string":
            tokens.append(_Token("string", match.group("string")[1:-1].replace("''", "'")))
        elif match.lastgroup == "name":
            name = match.group("name")
            if name.lower() in _KEYWORDS:
                tokens.append(_Token("keyword", name.lower()))
            else:
                tokens.append(_Token("name", name))
        else:
            tokens.append(_Token("op", match.group("op")))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token], schemas: Mapping[str, Schema]) -> None:
        self.tokens = tokens
        self.position = 0
        self.schemas = {name.lower(): schema for name, schema in schemas.items()}

    # -- token helpers ------------------------------------------------------------

    def _peek(self) -> _Token | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of SQL statement")
        self.position += 1
        return token

    def _accept_keyword(self, *keywords: str) -> str | None:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value in keywords:
            self.position += 1
            return token.value
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise SQLSyntaxError(f"expected {keyword.upper()!r} near token {self._peek()}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == op:
            self.position += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise SQLSyntaxError(f"expected {op!r} near token {self._peek()}")

    # -- grammar --------------------------------------------------------------------

    def parse(self) -> LogicalQuery:
        self._expect_keyword("select")
        self._accept_keyword("distinct")
        select_list = self._select_list()
        self._expect_keyword("from")
        relations = self._relation_list()
        predicate: Expression | None = None
        if self._accept_keyword("where"):
            predicate = self._expression()
        group_by: list[str] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = self._name_list()
        having: Expression | None = None
        if self._accept_keyword("having"):
            having = self._expression()
        order_by: list[tuple[str, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = self._order_list()
        limit: int | None = None
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number":
                raise SQLSyntaxError("LIMIT expects a number")
            limit = int(float(token.value))
        self._accept_op(";")
        if self._peek() is not None:
            raise SQLSyntaxError(f"unexpected trailing token {self._peek()}")
        return self._build_query(select_list, relations, predicate, group_by, having,
                                 order_by, limit)

    def _select_list(self) -> list[tuple[str, object]]:
        """Items are (output name, Expression | AggregateSpec | "*")."""
        items: list[tuple[str, object]] = []
        while True:
            if self._accept_op("*"):
                items.append(("*", "*"))
            else:
                expression = self._select_item()
                name = None
                if self._accept_keyword("as"):
                    token = self._next()
                    name = token.value
                elif self._peek() is not None and self._peek().kind == "name":
                    name = self._next().value
                if isinstance(expression, AggregateSpec):
                    if name:
                        expression = AggregateSpec(name, expression.function, expression.argument)
                    items.append((expression.name, expression))
                else:
                    items.append((name or _default_name(expression, len(items)), expression))
            if not self._accept_op(","):
                break
        return items

    def _select_item(self):
        token = self._peek()
        if token is not None and token.kind == "name" and token.value.lower() in AGGREGATES:
            lookahead = self.tokens[self.position + 1] if self.position + 1 < len(self.tokens) else None
            if lookahead is not None and lookahead.kind == "op" and lookahead.value == "(":
                func_name = self._next().value.lower()
                self._expect_op("(")
                if self._accept_op("*"):
                    argument: Expression = lit(1)
                else:
                    argument = self._expression()
                self._expect_op(")")
                return AggregateSpec(f"{func_name}_{self.position}", AGGREGATES[func_name](), argument)
        return self._expression()

    def _relation_list(self) -> list[str]:
        relations = []
        while True:
            token = self._next()
            if token.kind != "name":
                raise SQLSyntaxError(f"expected a relation name, got {token}")
            relations.append(token.value)
            if not self._accept_op(","):
                break
        return relations

    def _name_list(self) -> list[str]:
        names = []
        while True:
            token = self._next()
            if token.kind != "name":
                raise SQLSyntaxError(f"expected an attribute name, got {token}")
            names.append(_unqualified(token.value))
            if not self._accept_op(","):
                break
        return names

    def _order_list(self) -> list[tuple[str, bool]]:
        result = []
        while True:
            token = self._next()
            if token.kind != "name":
                raise SQLSyntaxError(f"expected an attribute name, got {token}")
            ascending = True
            if self._accept_keyword("desc"):
                ascending = False
            else:
                self._accept_keyword("asc")
            result.append((_unqualified(token.value), ascending))
            if not self._accept_op(","):
                break
        return result

    # -- expressions -------------------------------------------------------------------

    def _expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        parts = [self._and_expression()]
        while self._accept_keyword("or"):
            parts.append(self._and_expression())
        return or_(*parts) if len(parts) > 1 else parts[0]

    def _and_expression(self) -> Expression:
        parts = [self._not_expression()]
        while self._accept_keyword("and"):
            parts.append(self._not_expression())
        return and_(*parts) if len(parts) > 1 else parts[0]

    def _not_expression(self) -> Expression:
        if self._accept_keyword("not"):
            return not_(self._not_expression())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            operator = self._next().value
            if operator == "<>":
                operator = "!="
            right = self._additive()
            return Comparison(operator, left, right)
        if self._accept_keyword("between"):
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return and_(Comparison(">=", left, low), Comparison("<=", left, high))
        if self._accept_keyword("in"):
            self._expect_op("(")
            values = []
            while True:
                token = self._next()
                if token.kind == "number":
                    values.append(_number(token.value))
                elif token.kind == "string":
                    values.append(token.value)
                else:
                    raise SQLSyntaxError("IN lists may only contain literals")
                if not self._accept_op(","):
                    break
            self._expect_op(")")
            return InList(left, values)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            if self._accept_op("+"):
                left = left + self._multiplicative()
            elif self._accept_op("-"):
                left = left - self._multiplicative()
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._primary()
        while True:
            if self._accept_op("*"):
                left = left * self._primary()
            elif self._accept_op("/"):
                left = left / self._primary()
            else:
                return left

    def _primary(self) -> Expression:
        if self._accept_op("("):
            inner = self._expression()
            self._expect_op(")")
            return inner
        if self._accept_op("-"):
            return lit(0) - self._primary()
        token = self._next()
        if token.kind == "number":
            return lit(_number(token.value))
        if token.kind == "string":
            return lit(token.value)
        if token.kind == "name":
            lookahead = self._peek()
            if lookahead is not None and lookahead.kind == "op" and lookahead.value == "(":
                self._next()
                arguments = []
                if not self._accept_op(")"):
                    while True:
                        arguments.append(self._expression())
                        if not self._accept_op(","):
                            break
                    self._expect_op(")")
                return FunctionCall(token.value, arguments)
            return col(_unqualified(token.value))
        raise SQLSyntaxError(f"unexpected token {token} in expression")

    # -- query assembly --------------------------------------------------------------------

    def _build_query(
        self,
        select_list: list[tuple[str, object]],
        relations: Sequence[str],
        predicate: Expression | None,
        group_by: list[str],
        having: Expression | None,
        order_by: list[tuple[str, bool]],
        limit: int | None,
    ) -> LogicalQuery:
        plan: LogicalPlan | None = None
        for relation in relations:
            schema = self.schemas.get(relation.lower())
            if schema is None:
                raise SQLSyntaxError(f"unknown relation {relation!r}")
            scan = LogicalScan(schema)
            plan = scan if plan is None else _cross_join(plan, scan, predicate)
        assert plan is not None
        if predicate is not None:
            plan = LogicalSelect(plan, predicate)

        aggregates = [item for _name, item in select_list if isinstance(item, AggregateSpec)]
        plain = [(name, item) for name, item in select_list
                 if not isinstance(item, AggregateSpec) and item != "*"]
        has_star = any(item == "*" for _name, item in select_list)

        if aggregates or group_by:
            plan = LogicalAggregate(plan, group_by=group_by, aggregates=aggregates, having=having)
        elif not has_star and plain:
            plan = LogicalProject(plan, [(name, expr) for name, expr in plain])
        return LogicalQuery(root=plan, order_by=order_by, limit=limit, name="sql")


def _cross_join(left: LogicalPlan, right: LogicalPlan, predicate: Expression | None) -> LogicalPlan:
    """Combine FROM-list relations; join conditions live in the WHERE clause.

    The logical join node requires an equi-join condition, so FROM-list
    combinations are represented by joining on the first pair of equality
    conjuncts found in the predicate; the planner re-derives the real join
    graph from the flattened conjuncts, so the exact placement here does not
    affect the final plan.
    """
    from .expressions import split_conjuncts
    from .logical import LogicalJoin

    left_attrs = set(left.output_attributes())
    right_attrs = set(right.output_attributes())
    if predicate is not None:
        for conjunct in split_conjuncts(predicate):
            if isinstance(conjunct, Comparison) and conjunct.operator == "=":
                refs = conjunct.references()
                left_refs = refs & left_attrs
                right_refs = refs & right_attrs
                if left_refs and right_refs and len(refs) == 2:
                    left_attr = next(iter(left_refs))
                    right_attr = next(iter(right_refs))
                    return LogicalJoin(left, right, [(left_attr, right_attr)])
    # Fall back to a synthetic condition on the first attributes; the planner
    # treats all equality conjuncts uniformly so this only matters for plans
    # evaluated directly by the reference evaluator.
    return LogicalJoin(
        left, right, [(next(iter(left_attrs)), next(iter(right_attrs)))]
    )


def _unqualified(name: str) -> str:
    """Strip a ``relation.`` qualifier; attribute names are globally unique."""
    return name.split(".")[-1]


def _number(text: str):
    return float(text) if "." in text else int(text)


def _default_name(expression: Expression, index: int) -> str:
    if hasattr(expression, "name") and isinstance(getattr(expression, "name"), str):
        return getattr(expression, "name")
    return f"column_{index}"


def parse_query(sql: str, schemas: Mapping[str, Schema]) -> LogicalQuery:
    """Parse a single-block SQL statement into a logical query."""
    return _Parser(_tokenize(sql), schemas).parse()
