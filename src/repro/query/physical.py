"""Physical (distributed) query plans.

A physical plan is what the query initiator disseminates to every node, along
with the routing-table snapshot.  It is a tree of operator descriptors — the
operators of Table I — in which data exchange is explicit:

* :class:`PhysRehash` repartitions its input across all nodes by hashing a set
  of attributes with the same hash function the storage layer uses for base
  data, so that tuples that must meet (join or group together) are co-located.
* :class:`PhysShip` sends its input to the query initiator, whose collector
  assembles the final result (optionally performing the last aggregation
  step, as in TPC-H Q1/Q6, or ordering the output).

Every operator has a plan-unique ``op_id``; data and end-of-stream messages
reference the *exchange* operator they belong to, which is how a receiving
node routes an incoming batch to the right runtime operator.

The plan also records, per scan, whether the scan is *covering* (only key
attributes are needed, so index nodes can answer it without touching the data
storage nodes) and the sargable/residual split of any pushed-down predicate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from ..common.errors import PlanError
from ..common.types import Schema
from .expressions import AggregateSpec, Expression


@dataclass
class PhysicalOperator:
    """Base class for physical operator descriptors."""

    op_id: int

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def output_attributes(self) -> tuple[str, ...]:
        raise NotImplementedError

    def estimated_descriptor_size(self) -> int:
        """Rough wire size of this descriptor when the plan is disseminated."""
        return 48


@dataclass
class PhysScan(PhysicalOperator):
    """Leaf scan over a stored relation version.

    ``covering`` selects the *covering index scan* of Table I: when only key
    attributes are needed the index nodes produce the rows themselves.
    Otherwise this is the *distributed scan*: index nodes filter tuple IDs
    with the sargable predicate and data storage nodes produce the rows,
    applying the residual predicate before pushing them into the local plan.
    """

    schema: Schema = None  # type: ignore[assignment]
    columns: tuple[str, ...] = ()
    epoch: int | None = None
    sargable: Expression | None = None
    residual: Expression | None = None
    covering: bool = False
    #: Plan-time page-pruning candidates: the finite set of ring positions a
    #: matching tuple can be stored at, derived from the sargable predicate by
    #: :func:`~repro.query.pushdown.candidate_partition_hashes`.  ``None``
    #: means the predicate does not bound the partition key (no pruning); an
    #: empty tuple means no page can match.
    prune_hashes: tuple[int, ...] | None = None

    def output_attributes(self) -> tuple[str, ...]:
        return tuple(self.columns) if self.columns else self.schema.attributes

    def estimated_descriptor_size(self) -> int:
        """Honest wire size: base framing + projection + pushed predicates.

        The pushed selection/projection ride to every participant inside the
        plan, so their descriptor bytes are charged here rather than hidden
        in the flat base — the traffic figures see what pushdown ships.
        """
        from .pushdown import columns_wire_size, expression_wire_size

        return (
            48
            + columns_wire_size(self.columns)
            + expression_wire_size(self.sargable)
            + expression_wire_size(self.residual)
            + (20 * len(self.prune_hashes) if self.prune_hashes else 0)
        )

    def __repr__(self) -> str:
        kind = "CoveringIndexScan" if self.covering else "DistributedScan"
        details = [self.schema.name]
        if self.sargable is not None:
            details.append(f"sargable={self.sargable!r}")
        if self.residual is not None:
            details.append(f"residual={self.residual!r}")
        if self.prune_hashes is not None:
            details.append(f"prunable={len(self.prune_hashes)}")
        return f"{kind}({', '.join(details)})"


@dataclass
class PhysSelect(PhysicalOperator):
    """Selection on intermediate results."""

    child: PhysicalOperator = None  # type: ignore[assignment]
    predicate: Expression = None  # type: ignore[assignment]

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def output_attributes(self) -> tuple[str, ...]:
        return self.child.output_attributes()

    def estimated_descriptor_size(self) -> int:
        from .pushdown import expression_wire_size

        return 48 + expression_wire_size(self.predicate)

    def __repr__(self) -> str:
        return f"Select({self.predicate!r})"


@dataclass
class PhysProject(PhysicalOperator):
    """Projection and scalar function evaluation (Project / Compute-function)."""

    child: PhysicalOperator = None  # type: ignore[assignment]
    outputs: list[tuple[str, Expression]] = field(default_factory=list)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def output_attributes(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.outputs)

    def __repr__(self) -> str:
        return f"Project({[name for name, _ in self.outputs]})"


@dataclass
class PhysHashJoin(PhysicalOperator):
    """Pipelined (symmetric) hash join; both inputs must already be partitioned
    on their join keys when this operator runs."""

    left: PhysicalOperator = None  # type: ignore[assignment]
    right: PhysicalOperator = None  # type: ignore[assignment]
    left_keys: tuple[str, ...] = ()
    right_keys: tuple[str, ...] = ()

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def output_attributes(self) -> tuple[str, ...]:
        return self.left.output_attributes() + self.right.output_attributes()

    def __repr__(self) -> str:
        cond = ", ".join(f"{left}={right}" for left, right in zip(self.left_keys, self.right_keys))
        return f"HashJoin({cond})"


@dataclass
class PhysRehash(PhysicalOperator):
    """Exchange: repartition the input across all nodes by hashing ``keys``."""

    child: PhysicalOperator = None  # type: ignore[assignment]
    keys: tuple[str, ...] = ()

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def output_attributes(self) -> tuple[str, ...]:
        return self.child.output_attributes()

    def __repr__(self) -> str:
        return f"Rehash({list(self.keys)})"


@dataclass
class PhysAggregate(PhysicalOperator):
    """Blocking, hash-based grouping operator.

    ``merge_partials`` distinguishes the two roles the operator plays:

    * ``False`` — it consumes raw rows and produces *partial* aggregate states
      (one row per group seen locally);
    * ``True`` — it consumes partial states (from a previous aggregate, after
      a rehash) and merges them into final per-group results.
    """

    child: PhysicalOperator = None  # type: ignore[assignment]
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    merge_partials: bool = False

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def output_attributes(self) -> tuple[str, ...]:
        return tuple(self.group_by) + tuple(spec.name for spec in self.aggregates)

    def __repr__(self) -> str:
        mode = "Final" if self.merge_partials else "Partial"
        return f"{mode}Aggregate(group_by={list(self.group_by)})"


#: How the initiator-side collector treats arriving rows.
COLLECT_APPEND = "append"
#: Arriving rows are partial aggregate states to merge by group key.
COLLECT_MERGE_PARTIALS = "merge_partials"
#: Arriving rows are final per-group results; later phases replace earlier
#: rows with the same group key (used during incremental recovery).
COLLECT_REPLACE_GROUPS = "replace_groups"


@dataclass
class PhysShip(PhysicalOperator):
    """Exchange: send all input rows to the query initiator."""

    child: PhysicalOperator = None  # type: ignore[assignment]
    collector_mode: str = COLLECT_APPEND
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def output_attributes(self) -> tuple[str, ...]:
        if self.collector_mode == COLLECT_MERGE_PARTIALS:
            return tuple(self.group_by) + tuple(spec.name for spec in self.aggregates)
        return self.child.output_attributes()

    def __repr__(self) -> str:
        return f"Ship(mode={self.collector_mode})"


@dataclass
class PhysicalPlan:
    """A complete distributed plan: the ship root plus plan-wide metadata."""

    root: PhysShip
    name: str = "query"
    #: Ship exchange batches (and price scans) at encoded-column sizes; the
    #: planner stamps this from ``PlannerOptions.enable_encoding`` so the
    #: execution layer can A/B the encoding pipeline per query.
    enable_encoding: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.root, PhysShip):
            raise PlanError("the root of a physical plan must be a Ship operator")
        ids = [op.op_id for op in self.operators()]
        if len(ids) != len(set(ids)):
            raise PlanError("operator ids in a physical plan must be unique")

    # -- traversal ---------------------------------------------------------------

    def operators(self) -> list[PhysicalOperator]:
        """All operators, children before parents (post-order)."""
        result: list[PhysicalOperator] = []

        def visit(op: PhysicalOperator) -> None:
            for child in op.children():
                visit(child)
            result.append(op)

        visit(self.root)
        return result

    def operator(self, op_id: int) -> PhysicalOperator:
        for op in self.operators():
            if op.op_id == op_id:
                return op
        raise PlanError(f"no operator with id {op_id}")

    def scans(self) -> list[PhysScan]:
        return [op for op in self.operators() if isinstance(op, PhysScan)]

    def exchanges(self) -> list[PhysicalOperator]:
        return [op for op in self.operators() if isinstance(op, (PhysRehash, PhysShip))]

    def rehashes(self) -> list[PhysRehash]:
        return [op for op in self.operators() if isinstance(op, PhysRehash)]

    def parent_of(self, op_id: int) -> PhysicalOperator | None:
        for op in self.operators():
            if any(child.op_id == op_id for child in op.children()):
                return op
        return None

    def output_attributes(self) -> tuple[str, ...]:
        return self.root.output_attributes()

    def estimated_size(self) -> int:
        """Wire size of the plan when disseminated with the routing snapshot."""
        return 128 + sum(op.estimated_descriptor_size() for op in self.operators())

    def describe(self) -> str:
        """Human-readable, indented plan description (used in examples/docs)."""
        lines: list[str] = []

        def visit(op: PhysicalOperator, depth: int) -> None:
            lines.append("  " * depth + repr(op))
            for child in op.children():
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


class PlanBuilder:
    """Small helper for constructing physical plans with unique operator ids."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)

    def next_id(self) -> int:
        return next(self._ids)

    def scan(self, schema: Schema, columns: Sequence[str] | None = None, epoch: int | None = None,
             sargable: Expression | None = None, residual: Expression | None = None,
             covering: bool = False,
             prune_hashes: Sequence[int] | None = None) -> PhysScan:
        return PhysScan(
            op_id=self.next_id(),
            schema=schema,
            columns=tuple(columns) if columns else schema.attributes,
            epoch=epoch,
            sargable=sargable,
            residual=residual,
            covering=covering,
            prune_hashes=tuple(prune_hashes) if prune_hashes is not None else None,
        )

    def select(self, child: PhysicalOperator, predicate: Expression) -> PhysSelect:
        return PhysSelect(op_id=self.next_id(), child=child, predicate=predicate)

    def project(self, child: PhysicalOperator, outputs: Sequence[tuple[str, Expression]]) -> PhysProject:
        return PhysProject(op_id=self.next_id(), child=child, outputs=list(outputs))

    def hash_join(self, left: PhysicalOperator, right: PhysicalOperator,
                  left_keys: Sequence[str], right_keys: Sequence[str]) -> PhysHashJoin:
        return PhysHashJoin(
            op_id=self.next_id(), left=left, right=right,
            left_keys=tuple(left_keys), right_keys=tuple(right_keys),
        )

    def rehash(self, child: PhysicalOperator, keys: Sequence[str]) -> PhysRehash:
        return PhysRehash(op_id=self.next_id(), child=child, keys=tuple(keys))

    def aggregate(self, child: PhysicalOperator, group_by: Sequence[str],
                  aggregates: Sequence[AggregateSpec], merge_partials: bool = False) -> PhysAggregate:
        return PhysAggregate(
            op_id=self.next_id(), child=child, group_by=tuple(group_by),
            aggregates=tuple(aggregates), merge_partials=merge_partials,
        )

    def ship(self, child: PhysicalOperator, collector_mode: str = COLLECT_APPEND,
             group_by: Sequence[str] = (), aggregates: Sequence[AggregateSpec] = (),
             order_by: Sequence[tuple[str, bool]] = (), limit: int | None = None) -> PhysShip:
        return PhysShip(
            op_id=self.next_id(), child=child, collector_mode=collector_mode,
            group_by=tuple(group_by), aggregates=tuple(aggregates),
            order_by=tuple(order_by), limit=limit,
        )
