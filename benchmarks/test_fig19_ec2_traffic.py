"""Figure 19: total traffic on the EC2 profile, 10-100 nodes."""

from conftest import EC2_NODE_COUNTS, TPCH_SCALING_EC2, TPCH_SF_EC2, run_once
from repro.bench import format_table, run_tpch_sweep


def test_fig19_ec2_total_traffic_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_tpch_sweep, EC2_NODE_COUNTS, TPCH_SF_EC2,
                    ("Q1", "Q3", "Q5", "Q6", "Q10"), "ec2", scaling=TPCH_SCALING_EC2)
    print_series("Figure 19: TPC-H SF 10 total traffic (MB) on EC2 profile vs nodes",
                 format_table(rows, ["query", "nodes", "traffic_mb"]))
    at_mid = {r["query"]: r["traffic_mb"] for r in rows if r["nodes"] == EC2_NODE_COUNTS[1]}
    assert at_mid["Q10"] > at_mid["Q1"]
    assert at_mid["Q5"] > at_mid["Q6"]
