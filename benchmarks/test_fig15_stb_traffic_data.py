"""Figure 15: STBenchmark network traffic vs data size, 8 nodes."""

from conftest import STB_DATA_SWEEP, run_once, series
from repro.bench import format_table, run_stb_data_sweep


def test_fig15_stb_traffic_vs_data_size(benchmark, print_series):
    rows = run_once(benchmark, run_stb_data_sweep, STB_DATA_SWEEP, 8)
    print_series("Figure 15: STBenchmark traffic (MB) vs tuples/relation (8 nodes)",
                 format_table(rows, ["scenario", "tuples_per_relation", "traffic_mb"]))
    # Shape: traffic grows approximately linearly with the data size, and the
    # Join scenario moves the most data overall.
    for scenario in ("copy", "join"):
        traffic = series(rows, "traffic_mb", "scenario", scenario, "tuples_per_relation")
        assert traffic[max(STB_DATA_SWEEP)] > traffic[min(STB_DATA_SWEEP)]
    largest = max(STB_DATA_SWEEP)
    at_largest = {r["scenario"]: r["traffic_mb"] for r in rows if r["tuples_per_relation"] == largest}
    assert at_largest["join"] >= at_largest["select"]
