"""Section VI-C (text): realistic added latency has little impact on run time."""

from conftest import LATENCIES_MS, run_once, series
from repro.bench import format_table, run_latency_sweep


def test_latency_has_modest_impact(benchmark, print_series):
    rows = run_once(benchmark, run_latency_sweep, LATENCIES_MS, 8, 1.0)
    print_series("Section VI-C: TPC-H running time (s) vs added latency (ms)",
                 format_table(rows, ["query", "latency_ms", "execution_seconds"]))
    # Shape: up to 200 ms of added latency changes run time far less than
    # proportionally (the paper observed "little impact").
    for query in ("Q3", "Q6"):
        times = series(rows, "execution_seconds", "query", query, "latency_ms")
        assert times[max(LATENCIES_MS)] < times[min(LATENCIES_MS)] + 10 * (max(LATENCIES_MS) / 1000.0)
