"""Figure 16: TPC-H network traffic vs database scale factor, 8 nodes."""

from conftest import TPCH_SF_DATA_SWEEP, run_once, series
from repro.bench import format_table, run_tpch_data_sweep


def test_fig16_tpch_traffic_vs_scale_factor(benchmark, print_series):
    rows = run_once(benchmark, run_tpch_data_sweep, TPCH_SF_DATA_SWEEP, 8)
    print_series("Figure 16: TPC-H traffic (MB) vs scale factor (8 nodes)",
                 format_table(rows, ["query", "scale_factor", "traffic_mb"]))
    # Shape: traffic scales with the data, and the join queries dominate.
    for query in ("Q3", "Q10"):
        traffic = series(rows, "traffic_mb", "query", query, "scale_factor")
        assert traffic[max(TPCH_SF_DATA_SWEEP)] > traffic[min(TPCH_SF_DATA_SWEEP)]
    largest = max(TPCH_SF_DATA_SWEEP)
    at_largest = {r["query"]: r["traffic_mb"] for r in rows if r["scale_factor"] == largest}
    assert at_largest["Q10"] > at_largest["Q1"]
