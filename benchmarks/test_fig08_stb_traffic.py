"""Figure 8: STBenchmark total network traffic, 1-16 nodes."""

from conftest import LAN_NODE_COUNTS, STB_TUPLES, run_once, series
from repro.bench import format_table, run_stb_node_sweep


def test_fig08_stb_total_traffic_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_stb_node_sweep, LAN_NODE_COUNTS, STB_TUPLES)
    print_series("Figure 8: STBenchmark total traffic (MB) vs nodes",
                 format_table(rows, ["scenario", "nodes", "traffic_mb"]))
    # Shape: traffic grows (moderately) with the number of nodes, and the Join
    # scenario moves the most data.
    for scenario in ("join", "copy"):
        traffic = series(rows, "traffic_mb", "scenario", scenario, "nodes")
        assert traffic[max(LAN_NODE_COUNTS)] >= traffic[2]
    at_8 = {r["scenario"]: r["traffic_mb"] for r in rows if r["nodes"] == 8}
    assert at_8["join"] >= at_8["select"]
