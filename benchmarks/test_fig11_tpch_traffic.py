"""Figure 11: TPC-H total network traffic, 1-16 nodes."""

from conftest import LAN_NODE_COUNTS, TPCH_SCALING_LAN_SWEEP, TPCH_SF_NODE_SWEEP, run_once
from repro.bench import format_table, run_tpch_sweep


def test_fig11_tpch_total_traffic_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_tpch_sweep, LAN_NODE_COUNTS, TPCH_SF_NODE_SWEEP,
                    scaling=TPCH_SCALING_LAN_SWEEP)
    print_series("Figure 11: TPC-H total traffic (MB) vs nodes",
                 format_table(rows, ["query", "nodes", "traffic_mb"]))
    # Shape: the join/rehash queries (Q3, Q5, Q10) move much more data than
    # the local-aggregation queries (Q1, Q6).
    at_8 = {r["query"]: r["traffic_mb"] for r in rows if r["nodes"] == 8}
    assert at_8["Q10"] > at_8["Q1"]
    assert at_8["Q3"] > at_8["Q6"]
