"""Cache subsystem: cold vs. warm network traffic (repro.cache).

Not a paper figure — the paper measures cold executions only — but the
regime the ROADMAP's heavy-traffic north star lives in: the same retrievals
and queries arriving over and over.  The version-keyed caches must turn the
warm repeats into (near-)zero network traffic without ever serving stale
data.
"""

from conftest import run_once, series  # noqa: F401  (shared fixtures)
from repro.bench import (
    format_table,
    run_result_cache_experiment,
    run_retrieval_cache_experiment,
)


def test_cache_warm_retrieval_ships_fewer_bytes(benchmark, print_series):
    rows = run_once(
        benchmark, run_retrieval_cache_experiment,
        num_nodes=8, tuples_per_relation=800, repeats=3,
    )
    print_series(
        "Cache: STBenchmark retrieval, cold vs warm (bytes on the wire)",
        format_table(rows, ["run", "traffic_bytes", "pages_scanned",
                            "pages_from_cache", "cache_hits", "cache_bytes_saved"]),
    )
    cold, warm1, warm2 = rows
    assert cold["run"] == "cold" and cold["pages_from_cache"] == 0
    # Acceptance criterion: the warm repeat ships strictly fewer bytes than
    # the cold run — in fact every page is answered locally.
    assert warm1["traffic_bytes"] < cold["traffic_bytes"]
    assert warm1["pages_from_cache"] == warm1["pages_scanned"]
    assert warm2["traffic_bytes"] < cold["traffic_bytes"]
    # Identical answers, and the hit counters actually moved.
    assert warm1["tuples"] == cold["tuples"]
    assert warm1["cache_hits"] > 0
    assert warm1["cache_bytes_saved"] > 0


def test_result_cache_eliminates_warm_query_traffic(benchmark, print_series):
    rows = run_once(
        benchmark, run_result_cache_experiment,
        queries=("Q1", "Q6"), num_nodes=8, scale_factor=1.0, repeats=2,
    )
    print_series(
        "Cache: TPC-H repeat queries through the semantic result cache",
        format_table(rows, ["query", "run", "execution_seconds", "traffic_bytes",
                            "result_rows", "result_cache_hit"]),
    )
    for query_name in ("Q1", "Q6"):
        cold, warm = [r for r in rows if r["query"] == query_name]
        assert not cold["result_cache_hit"]
        assert warm["result_cache_hit"]
        assert warm["traffic_bytes"] < cold["traffic_bytes"]
        assert warm["traffic_bytes"] == 0
        assert warm["result_rows"] == cold["result_rows"]
        assert warm["execution_seconds"] < cold["execution_seconds"]
