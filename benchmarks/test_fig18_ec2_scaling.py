"""Figure 18: larger-scale running time on the EC2 profile, 10-100 nodes."""

from conftest import EC2_NODE_COUNTS, TPCH_SCALING_EC2, TPCH_SF_EC2, run_once, series
from repro.bench import format_table, run_tpch_sweep


def test_fig18_ec2_running_time_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_tpch_sweep, EC2_NODE_COUNTS, TPCH_SF_EC2,
                    ("Q1", "Q3", "Q5", "Q6", "Q10"), "ec2", scaling=TPCH_SCALING_EC2)
    print_series("Figure 18: TPC-H SF 10 running time (s) on EC2 profile vs nodes",
                 format_table(rows, ["query", "nodes", "execution_seconds"]))
    # Shape: increasing the node count from 10 to 100 keeps decreasing the
    # execution time of the expensive queries.
    for query in ("Q3", "Q5", "Q10"):
        times = series(rows, "execution_seconds", "query", query, "nodes")
        assert times[max(EC2_NODE_COUNTS)] < times[min(EC2_NODE_COUNTS)]
