"""Figure 9: STBenchmark per-node network traffic, 1-16 nodes."""

from conftest import LAN_NODE_COUNTS, STB_TUPLES, run_once, series
from repro.bench import format_table, run_stb_node_sweep


def test_fig09_stb_per_node_traffic_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_stb_node_sweep, LAN_NODE_COUNTS, STB_TUPLES)
    print_series("Figure 9: STBenchmark per-node traffic (MB) vs nodes",
                 format_table(rows, ["scenario", "nodes", "per_node_mb"]))
    # Shape: after the jump from 1 node to distributed operation, per-node
    # traffic decreases as nodes are added.
    for scenario in ("join", "copy", "correspondence"):
        per_node = series(rows, "per_node_mb", "scenario", scenario, "nodes")
        assert per_node[max(LAN_NODE_COUNTS)] <= per_node[2]
