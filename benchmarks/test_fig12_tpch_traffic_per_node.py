"""Figure 12: TPC-H per-node network traffic, 1-16 nodes."""

from conftest import (LAN_NODE_COUNTS, TPCH_SCALING_LAN_SWEEP, TPCH_SF_NODE_SWEEP,
                      run_once, series)
from repro.bench import format_table, run_tpch_sweep


def test_fig12_tpch_per_node_traffic_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_tpch_sweep, LAN_NODE_COUNTS, TPCH_SF_NODE_SWEEP,
                    scaling=TPCH_SCALING_LAN_SWEEP)
    print_series("Figure 12: TPC-H per-node traffic (MB) vs nodes",
                 format_table(rows, ["query", "nodes", "per_node_mb"]))
    # Shape: per-node traffic keeps decreasing as nodes are added.
    for query in ("Q3", "Q5", "Q10"):
        per_node = series(rows, "per_node_mb", "query", query, "nodes")
        assert per_node[max(LAN_NODE_COUNTS)] <= per_node[2]
