"""Figure 13: STBenchmark running time vs data size, 8 nodes."""

from conftest import STB_DATA_SWEEP, run_once, series
from repro.bench import format_table, run_stb_data_sweep


def test_fig13_stb_running_time_vs_data_size(benchmark, print_series):
    rows = run_once(benchmark, run_stb_data_sweep, STB_DATA_SWEEP, 8)
    print_series("Figure 13: STBenchmark running time (s) vs tuples/relation (8 nodes)",
                 format_table(rows, ["scenario", "tuples_per_relation", "execution_seconds"]))
    # Shape: execution time grows approximately linearly with the data size.
    for scenario in ("copy", "join", "select"):
        times = series(rows, "execution_seconds", "scenario", scenario, "tuples_per_relation")
        smallest, largest = min(STB_DATA_SWEEP), max(STB_DATA_SWEEP)
        assert times[largest] > times[smallest]
        growth = times[largest] / times[smallest]
        assert growth > (largest / smallest) * 0.25
