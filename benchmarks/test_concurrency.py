"""Concurrent traffic through the runtime layer (repro.runtime).

Not a paper figure — Section VI measures one query at a time — but the
regime the ROADMAP's north star lives in: many tenants submitting
simultaneously.  The closed-loop sweep must show real overlap (aggregate
throughput above the serial baseline), and the admission-controlled
scheduler must provably bound the number of concurrently running queries.
"""

from conftest import run_once  # noqa: F401  (shared fixtures)
from repro.bench import (
    format_table,
    run_concurrency_experiment,
    run_offered_load_experiment,
)
from repro.runtime import SchedulerConfig

NODES = 8
TUPLES = 400
OPS_PER_CLIENT = 4


def test_concurrent_throughput_beats_serial_baseline(benchmark, print_series):
    rows = run_once(
        benchmark, run_concurrency_experiment,
        concurrency_levels=(1, 2, 4, 8), num_nodes=NODES,
        tuples_per_relation=TUPLES, ops_per_client=OPS_PER_CLIENT,
    )
    print_series(
        "Concurrency: closed-loop clients vs aggregate throughput",
        format_table(rows, ["clients", "completed", "errors", "throughput_ops_s",
                            "p50_latency_s", "p99_latency_s", "max_in_flight",
                            "peak_queued"]),
    )
    by_clients = {r["clients"]: r for r in rows}
    serial = by_clients[1]
    concurrent = by_clients[8]
    # Every submitted operation completed, at every level.
    for row in rows:
        assert row["errors"] == 0
        assert row["completed"] == row["clients"] * OPS_PER_CLIENT
    # Acceptance criterion: aggregate throughput at concurrency 8 is strictly
    # greater than the single-client throughput on the same workload.
    assert concurrent["throughput_ops_s"] > serial["throughput_ops_s"]
    # The serial baseline really is serial.
    assert serial["max_in_flight"] == 1
    # Per-operation latency grows under contention (the overlap is real,
    # not an artifact of faster individual executions).
    assert concurrent["p99_latency_s"] >= serial["p99_latency_s"]


def test_admission_cap_bounds_in_flight_queries(benchmark, print_series):
    config = SchedulerConfig(max_in_flight_total=3, max_in_flight_per_initiator=1)
    rows = run_once(
        benchmark, run_concurrency_experiment,
        concurrency_levels=(8,), num_nodes=NODES, tuples_per_relation=TUPLES,
        ops_per_client=OPS_PER_CLIENT, scheduler_config=config,
    )
    print_series(
        "Concurrency: admission control (total cap 3, per-initiator cap 1)",
        format_table(rows, ["clients", "completed", "throughput_ops_s",
                            "max_in_flight", "peak_queued", "rejected"]),
    )
    row = rows[0]
    # Acceptance criterion: the admission cap bounds in-flight queries,
    # asserted from the scheduler's own high-water mark.
    assert row["max_in_flight"] <= 3
    # The cap actually bit: submissions had to wait.
    assert row["peak_queued"] > 0
    # Back-pressure, not loss: everything still completed.
    assert row["completed"] == 8 * OPS_PER_CLIENT
    assert row["errors"] == 0 and row["rejected"] == 0


def test_offered_load_sweep_saturates_gracefully(benchmark, print_series):
    rows = run_once(
        benchmark, run_offered_load_experiment,
        arrival_rates=(200.0, 2000.0, 10000.0), num_ops=24,
        num_nodes=NODES, tuples_per_relation=TUPLES,
    )
    print_series(
        "Concurrency: open-loop Poisson arrivals (offered load sweep)",
        format_table(rows, ["offered_ops_s", "completed", "throughput_ops_s",
                            "p50_latency_s", "p99_latency_s",
                            "mean_queue_delay_s", "max_in_flight", "peak_queued"]),
    )
    light, _medium, heavy = rows
    for row in rows:
        assert row["errors"] == 0
        assert row["completed"] == 24
    # Light load: the cluster keeps up with the arrival process (observed
    # throughput within ~20% of offered), with next to no queueing.
    assert light["throughput_ops_s"] > 0.8 * light["offered_ops_s"]
    assert light["peak_queued"] == 0
    # Heavy load: arrivals outrun the cluster, so completions lag the offered
    # rate, the in-flight cap is reached and the admission queue absorbs the
    # burst — p99 latency now includes queue delay and grows.
    assert heavy["throughput_ops_s"] < heavy["offered_ops_s"]
    assert heavy["peak_queued"] > 0
    assert heavy["p99_latency_s"] > light["p99_latency_s"]
    assert heavy["mean_queue_delay_s"] > light["mean_queue_delay_s"]
