"""Figure 7: STBenchmark running time, 800K tuples/relation (scaled), 1-16 nodes."""

from conftest import LAN_NODE_COUNTS, STB_TUPLES, run_once, series
from repro.bench import format_table, run_stb_node_sweep


def test_fig07_stb_running_time_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_stb_node_sweep, LAN_NODE_COUNTS, STB_TUPLES)
    print_series("Figure 7: STBenchmark running time (s) vs nodes",
                 format_table(rows, ["scenario", "nodes", "execution_seconds"]))
    # Shape: adding nodes speeds every scenario up substantially from 1 node...
    for scenario in ("join", "select", "correspondence"):
        times = series(rows, "execution_seconds", "scenario", scenario, "nodes")
        assert times[max(LAN_NODE_COUNTS)] < times[1]
    # ...and Join is the most expensive scenario, Select among the cheapest
    # (same ordering as the paper's Figure 7).
    at_16 = {r["scenario"]: r["execution_seconds"] for r in rows if r["nodes"] == max(LAN_NODE_COUNTS)}
    assert at_16["join"] > at_16["select"]
