"""Complexity pins for the large-cluster scaling work (Section VI at 200+ nodes).

Every test here pins an *operation or byte count* at two cluster sizes rather
than wall-clock time, so the pins hold on any machine.  Each corresponds to a
former superlinear wall found while profiling the committed scaling curve
(``BENCH_scale.json``, produced by ``python -m repro.bench.scale``):

* mid-query failure recovery broadcast ``query.scan_done`` to every
  participant from every rescanning index node — O(n²) messages per failure;
* the epoch gossip contacted every peer instead of ``FANOUT`` peers;
* a crash-restart rejoin collected the full member list from *every* seed —
  O(n²) bytes per churn event.
"""

from conftest import run_once

from repro.bench.harness import _build_fresh_tpch_cluster
from repro.bench.scale import _churn_config, check_scaling, fit_exponent, run_scale_point
from repro.common.types import RelationData, Schema
from repro.faults.scenarios import ScenarioRunner
from repro.query.service import RECOVERY_INCREMENTAL, QueryOptions
from repro.workloads import tpch


def _recovery_traffic(num_nodes, failure_offset=0.001):
    """Run TPC-H Q10 with a mid-query failure; return the traffic delta."""
    cluster, _ = _build_fresh_tpch_cluster(num_nodes, 2.0, 0, 0.002)
    cluster.enable_query_processing()
    victim = cluster.addresses[num_nodes // 2]
    cluster.fail_node(victim, at_time=cluster.now + failure_offset)
    before = cluster.network.traffic.snapshot()
    result = cluster.query(
        tpch.query("Q10"),
        options=QueryOptions(recovery_mode=RECOVERY_INCREMENTAL, use_result_cache=False),
    )
    delta = before.delta(cluster.network.traffic.snapshot())
    return delta, result


def test_recovery_scan_done_is_not_a_broadcast(benchmark):
    """Per-failure ``query.scan_done`` messages grow ~linearly with nodes.

    Before the fix every rescanning index node notified *all* participants,
    so a 4x node count meant ~16x messages; the narrowed receiver sets
    (``_recovery_receivers``) keep the per-rescanner fan-out bounded by the
    owners of the rescanned ranges.
    """

    def measure():
        small_delta, small_result = _recovery_traffic(8)
        large_delta, large_result = _recovery_traffic(32)
        return small_delta, small_result, large_delta, large_result

    small_delta, small_result, large_delta, large_result = run_once(benchmark, measure)
    small = small_delta.messages_by_kind.get("query.scan_done", 0)
    large = large_delta.messages_by_kind.get("query.scan_done", 0)
    # The failure must actually interrupt the query for the pin to bite.
    assert small_delta.messages_by_kind.get("query.recover", 0) > 0
    assert large_delta.messages_by_kind.get("query.recover", 0) > 0
    assert small > 0 and large > 0
    # 4x the nodes: a broadcast would be ~16x the messages; allow ~2x slack
    # over linear for the slight growth in owners per rescanned range.
    assert large <= 10 * small, (small, large)
    # Recovery still yields the right answer at both sizes.
    assert len(small_result.rows) == len(large_result.rows) > 0


def test_churn_scenario_event_count_scales_subquadratically(benchmark):
    """The elastic-churn scenario's simulator events stay near-linear."""

    def measure():
        results = {}
        for nodes in (40, 80):
            runner = ScenarioRunner(0, _churn_config(nodes))
            report = runner.run()
            results[nodes] = (runner.cluster.network.events_processed, report)
        return results

    results = run_once(benchmark, measure)
    for nodes, (_events, report) in results.items():
        assert report.violations == [], (nodes, report.violations)
    small, large = results[40][0], results[80][0]
    # 2x the nodes: quadratic would be 4x the events.
    assert large <= 3 * small, (small, large)


def test_scale_point_and_gate_roundtrip(benchmark):
    """One small scale point runs end to end and passes its own gate."""
    point = run_once(
        benchmark, run_scale_point, 8, seed=0, query_rounds=1, include_churn=True
    )
    assert point["nodes"] == 8
    assert point["totals"]["events"] > 0
    assert point["totals"]["bytes"] > 0
    assert point["churn_violations"] == []
    document = {"points": [point], "scaling": {}}
    # Identical runs must agree exactly on the deterministic counters.
    fresh = run_scale_point(8, seed=0, query_rounds=1, include_churn=True)
    failures = check_scaling(document, {"points": [fresh]}, tolerance=0.0)
    assert failures == [], failures


def test_fit_exponent_recovers_known_slopes():
    linear = [{"nodes": n, "totals": {"events": 7 * n}} for n in (8, 32, 128)]
    quadratic = [{"nodes": n, "totals": {"events": n * n}} for n in (8, 32, 128)]
    def metric(point):
        return point["totals"]["events"]

    assert abs(fit_exponent(linear, metric) - 1.0) < 1e-6
    assert abs(fit_exponent(quadratic, metric) - 2.0) < 1e-6


def _publish_epoch_bump(cluster):
    data = RelationData(Schema("gossip_probe", ["k", "v"], key=["k"]))
    for i in range(8):
        data.add(f"k{i}", i)
    before = cluster.network.traffic.snapshot()
    cluster.publish(data)
    cluster.run()
    return before.delta(cluster.network.traffic.snapshot())


def test_gossip_round_messages_scale_with_fanout_not_membership(benchmark):
    """An epoch bump costs O(FANOUT * n) gossip messages, not O(n^2)."""

    def measure():
        counts = {}
        for nodes in (24, 48):
            from repro.cluster import Cluster

            cluster = Cluster(nodes)
            cluster.run()
            delta = _publish_epoch_bump(cluster)
            counts[nodes] = delta.messages_by_kind.get("gossip.epoch", 0)
        return counts

    counts = run_once(benchmark, measure)
    assert counts[24] > 0
    # 2x the nodes: an all-peers push would be ~4x the messages.
    assert counts[48] <= 2.75 * counts[24], counts
    # Absolute bound: a handful of FANOUT-wide rounds per node per epoch bump.
    from repro.overlay.gossip import EpochGossip

    assert counts[48] <= 48 * (EpochGossip.FANOUT + 1), counts
