"""Figure 10: TPC-H running time, scale factor 0.5 (scaled), 1-16 nodes."""

from conftest import (LAN_NODE_COUNTS, TPCH_SCALING_LAN_SWEEP, TPCH_SF_NODE_SWEEP,
                      run_once, series)
from repro.bench import format_table, run_tpch_sweep


def test_fig10_tpch_running_time_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_tpch_sweep, LAN_NODE_COUNTS, TPCH_SF_NODE_SWEEP,
                    scaling=TPCH_SCALING_LAN_SWEEP)
    print_series("Figure 10: TPC-H running time (s) vs nodes",
                 format_table(rows, ["query", "nodes", "execution_seconds"]))
    # Shape: every query gets faster as nodes are added (near-linear for the
    # join queries), and the join queries cost more than the aggregation-only
    # queries Q1/Q6 at small node counts.
    for query in ("Q1", "Q3", "Q5", "Q10"):
        times = series(rows, "execution_seconds", "query", query, "nodes")
        assert times[max(LAN_NODE_COUNTS)] < times[1]
    at_1 = {r["query"]: r["execution_seconds"] for r in rows if r["nodes"] == 1}
    assert at_1["Q5"] > at_1["Q6"]
