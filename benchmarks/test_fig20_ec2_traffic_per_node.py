"""Figure 20: per-node traffic on the EC2 profile, 10-100 nodes."""

from conftest import EC2_NODE_COUNTS, TPCH_SCALING_EC2, TPCH_SF_EC2, run_once, series
from repro.bench import format_table, run_tpch_sweep


def test_fig20_ec2_per_node_traffic_vs_nodes(benchmark, print_series):
    rows = run_once(benchmark, run_tpch_sweep, EC2_NODE_COUNTS, TPCH_SF_EC2,
                    ("Q1", "Q3", "Q5", "Q6", "Q10"), "ec2", scaling=TPCH_SCALING_EC2)
    print_series("Figure 20: TPC-H SF 10 per-node traffic (MB) on EC2 profile vs nodes",
                 format_table(rows, ["query", "nodes", "per_node_mb"]))
    # Shape: per-node traffic decreases as nodes are added for the queries
    # whose data volume dominates (Q3, Q5).  Q10 moves little data at the
    # scaled-down workload, so its per-node traffic is bounded by the fixed
    # per-node control cost instead of decreasing; EXPERIMENTS.md discusses
    # this deviation from the paper's (data-dominated) regime.
    for query in ("Q3", "Q5"):
        per_node = series(rows, "per_node_mb", "query", query, "nodes")
        assert per_node[max(EC2_NODE_COUNTS)] < per_node[min(EC2_NODE_COUNTS)]
    q10 = series(rows, "per_node_mb", "query", "Q10", "nodes")
    assert q10[max(EC2_NODE_COUNTS)] < 1.5 * q10[min(EC2_NODE_COUNTS)]
