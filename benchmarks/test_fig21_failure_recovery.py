"""Figure 21: running time under a mid-query failure — restart vs incremental recovery."""

from conftest import FAILURE_TIMES, TPCH_SF_FAILURE, run_once
from repro.bench import format_table, run_failure_recovery_experiment
from repro.query.service import RECOVERY_INCREMENTAL, RECOVERY_RESTART


def test_fig21_restart_vs_incremental_recovery(benchmark, print_series):
    rows = run_once(benchmark, run_failure_recovery_experiment, FAILURE_TIMES, 8,
                    TPCH_SF_FAILURE, ("Q1", "Q10"))
    print_series("Figure 21: running time (s) with a failure, restart vs incremental recovery",
                 format_table(rows, ["query", "failure_time", "mode", "execution_seconds"]))
    for query in ("Q1", "Q10"):
        baseline = next(r for r in rows if r["query"] == query and r["mode"] == "no-failure")
        restarts = [r for r in rows if r["query"] == query and r["mode"] == RECOVERY_RESTART]
        recoveries = [r for r in rows if r["query"] == query and r["mode"] == RECOVERY_INCREMENTAL]
        mean_restart = sum(r["execution_seconds"] for r in restarts) / len(restarts)
        mean_recovery = sum(r["execution_seconds"] for r in recoveries) / len(recoveries)
        # Shape: both are slower than failure-free execution, and incremental
        # recovery beats aborting and restarting (the paper reports ~20%).
        assert mean_restart > baseline["execution_seconds"]
        assert mean_recovery <= mean_restart * 1.05
