"""Shared configuration for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation
(Section VI) on a *scaled-down* workload: the simulator runs the same
protocols and queries, but with roughly 1/1000 of the paper's tuple counts so
that the full suite completes in minutes.  The constants below are the single
place where those scales are defined; EXPERIMENTS.md records the scale used
for the committed results.

Each benchmark prints the full series it measured (the same rows the paper's
figure plots) and asserts the qualitative *shape* of the paper's result —
who wins, what grows, where the knee is — rather than absolute numbers.
"""

import pytest

from repro.workloads import tpch as _tpch

#: Node counts for the local-cluster experiments (the paper uses 1–16).
LAN_NODE_COUNTS = (1, 2, 4, 8, 16)
#: Node counts for the EC2-scale experiments (the paper uses 10–100).
EC2_NODE_COUNTS = (10, 25, 50, 100)
#: STBenchmark tuples per relation (stands in for the paper's 800 K).
STB_TUPLES = 800
#: STBenchmark data-size sweep (stands in for 100 K – 1.6 M tuples/relation).
#: Sized so per-tuple work dominates the fixed per-query cost at the smallest
#: point, as it does at the paper's 100 K-tuple smallest point.
STB_DATA_SWEEP = (800, 1600, 3200, 6400)
#: TPC-H scale factors; the generator's built-in scaling keeps these laptop sized.
TPCH_SF_NODE_SWEEP = 0.5
TPCH_SF_DATA_SWEEP = (0.25, 0.5, 1.0, 2.0, 4.0)
TPCH_SF_EC2 = 10.0
TPCH_SF_WAN = 2.0
TPCH_SF_FAILURE = 2.0

# The node-count sweeps (Figures 10-12 and 18-20) generate a larger fraction
# of the official TPC-H row counts than the default 1/2000.  Control traffic
# (plan dissemination, routing snapshots, end-of-stream markers) has a fixed
# absolute cost per node, so at 1/2000 of the paper's data it would dominate
# the traffic figures — a regime the paper never operates in.  Running the
# sweeps at 1/62.5 (LAN) and 1/250 (EC2) of TPC-H keeps the data:control ratio
# in the paper's regime while the full suite still finishes in minutes.
TPCH_SCALING_DEFAULT = _tpch.DEFAULT_SCALING
TPCH_SCALING_LAN_SWEEP = _tpch.DEFAULT_SCALING * 32
TPCH_SCALING_EC2 = _tpch.DEFAULT_SCALING * 4
#: Per-node bandwidths (KB/s) for the WAN experiment (paper: 100–3200 KB/s).
WAN_BANDWIDTHS = (200, 400, 800, 1600, 3200)
#: Added latencies (ms) for the latency observation of Section VI-C.
LATENCIES_MS = (0.1, 50, 100, 200)
#: Failure injection offsets (simulated seconds after query start).
FAILURE_TIMES = (0.001, 0.003, 0.005)


@pytest.fixture
def print_series(capsys):
    """Print a result table so it is visible in the benchmark output."""

    def _print(title, text):
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(text)

    return _print


def run_once(benchmark, function, *args, **kwargs):
    """Run a sweep exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def series(rows, key, label_field, label, x_field):
    """Extract one series (label → sorted x/y pairs) from sweep rows."""
    points = [r for r in rows if r[label_field] == label]
    return {r[x_field]: r[key] for r in sorted(points, key=lambda r: r[x_field])}
