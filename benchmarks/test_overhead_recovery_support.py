"""Section VI-E: overhead of carrying incremental-recovery support."""

from conftest import run_once
from repro.bench import format_table, run_recovery_overhead_experiment


def test_recovery_support_overhead(benchmark, print_series):
    rows = run_once(benchmark, run_recovery_overhead_experiment, 8, 1.0)
    print_series("Section VI-E: overhead of recovery support (provenance tags)",
                 format_table(rows, ["query", "time_overhead_pct", "traffic_overhead_pct"]))
    # Shape: the paper reports 2-7% runtime overhead and at most ~2% traffic
    # overhead; our scaled-down rows are narrower, so allow a looser bound
    # while still requiring the overhead to be small.
    for row in rows:
        assert row["traffic_overhead_pct"] < 20.0
        assert row["time_overhead_pct"] < 25.0
