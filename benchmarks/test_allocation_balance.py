"""Figure 2 (illustration): balanced vs Pastry-style range allocation."""

from conftest import run_once
from repro.bench import format_table, run_allocation_balance


def test_balanced_allocation_beats_pastry(benchmark, print_series):
    rows = run_once(benchmark, run_allocation_balance, (4, 8, 16, 32, 64, 128))
    print_series("Figure 2: key-space imbalance (max owned share / ideal share)",
                 format_table(rows, ["nodes", "pastry_imbalance", "balanced_imbalance"]))
    for row in rows:
        assert row["balanced_imbalance"] <= 1.001
        assert row["pastry_imbalance"] > row["balanced_imbalance"]
