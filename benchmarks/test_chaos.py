"""Chaos benchmark: availability and recovery latency under each fault mix.

Beyond the paper's single-failure experiment (Figure 21), this reports how
the full system behaves under crash-restart churn, partitions, packet-level
message chaos and slow nodes — with the invariant checkers asserting that no
mix ever trades correctness for availability.
"""

from repro.bench.harness import CHAOS_FAULT_MIXES, format_table, run_chaos_experiment


def test_chaos_fault_mixes():
    rows = run_chaos_experiment(seeds=(0, 1, 2))
    print()
    print(format_table(rows))

    by_mix: dict[str, list[dict]] = {}
    for row in rows:
        by_mix.setdefault(row["mix"], []).append(row)
    assert set(by_mix) == set(CHAOS_FAULT_MIXES)

    # Correctness is non-negotiable under every mix.
    for row in rows:
        assert row["violations"] == 0, f"{row['mix']} seed {row['seed']}: invariants violated"

    # A fault-free run acknowledges everything.
    for row in by_mix["clean"]:
        assert row["availability"] == 1.0
        assert row["recovery_s"] == 0.0

    # Faulty mixes may fail the crashed initiators' own operations, but the
    # cluster keeps serving: availability stays well above the floor and the
    # virtual clock reaches quiescence (recovery completes).
    for mix, mix_rows in by_mix.items():
        if mix == "clean":
            continue
        mean_availability = sum(r["availability"] for r in mix_rows) / len(mix_rows)
        assert mean_availability >= 0.5, f"{mix}: availability collapsed"
        assert all(r["recovery_s"] > 0 for r in mix_rows)

    # Message chaos manifests as transport retransmissions, not as loss.
    assert any(r["retransmits"] > 0 for r in by_mix["message-chaos"])
