"""Figure 14: TPC-H running time vs database scale factor, 8 nodes."""

from conftest import TPCH_SF_DATA_SWEEP, run_once, series
from repro.bench import format_table, run_tpch_data_sweep


def test_fig14_tpch_running_time_vs_scale_factor(benchmark, print_series):
    rows = run_once(benchmark, run_tpch_data_sweep, TPCH_SF_DATA_SWEEP, 8)
    print_series("Figure 14: TPC-H running time (s) vs scale factor (8 nodes)",
                 format_table(rows, ["query", "scale_factor", "execution_seconds"]))
    # Shape: running time grows approximately linearly with the scale factor.
    for query in ("Q1", "Q3", "Q10"):
        times = series(rows, "execution_seconds", "query", query, "scale_factor")
        assert times[max(TPCH_SF_DATA_SWEEP)] > times[min(TPCH_SF_DATA_SWEEP)]
