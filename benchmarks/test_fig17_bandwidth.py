"""Figure 17: TPC-H running time vs per-node bandwidth (simulated WAN)."""

from conftest import TPCH_SF_WAN, WAN_BANDWIDTHS, run_once, series
from repro.bench import format_table, run_bandwidth_sweep


def test_fig17_running_time_vs_bandwidth(benchmark, print_series):
    rows = run_once(benchmark, run_bandwidth_sweep, WAN_BANDWIDTHS, 8, TPCH_SF_WAN)
    print_series("Figure 17: TPC-H running time (s) vs per-node bandwidth (KB/s)",
                 format_table(rows, ["query", "bandwidth_kb_per_s", "execution_seconds"]))
    # Shape: very low bandwidth hurts badly; queries that rehash a lot (Q3,
    # Q5, Q10) are hit much harder than the aggregation-only queries (Q1, Q6).
    for query in ("Q3", "Q5", "Q10"):
        times = series(rows, "execution_seconds", "query", query, "bandwidth_kb_per_s")
        assert times[min(WAN_BANDWIDTHS)] > times[max(WAN_BANDWIDTHS)]
    lowest = min(WAN_BANDWIDTHS)
    at_low = {r["query"]: r["execution_seconds"] for r in rows if r["bandwidth_kb_per_s"] == lowest}
    assert at_low["Q10"] > at_low["Q6"]
    assert at_low["Q3"] > at_low["Q1"]
