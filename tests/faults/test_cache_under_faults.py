"""Cache behaviour under faults (eviction + invalidation across crash-restart).

The dangerous interaction: a publishing node crashes mid-publish and later
restarts.  Whatever the caches held — semantic query results keyed by
relation-version epochs, node-level pages/batches/resolutions — must never
surface data that contradicts a cache-bypassing execution, and the restarted
node itself comes back with cold (volatile) caches over its durable store.
"""

from repro.cache import CacheConfig
from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.faults.invariants import result_bytes
from repro.query.logical import LogicalQuery, LogicalScan
from repro.query.service import QueryOptions
from repro.storage.client import UpdateBatch


def make_relation(rows=150, name="readings"):
    data = RelationData(Schema(name, ["k", "site", "v"], key=["k"]))
    for i in range(rows):
        data.add(f"k{i:04d}", f"s{i % 7}", i)
    return data


def build_cached_cluster(num_nodes=6, **cache_kwargs):
    cluster = Cluster(num_nodes, cache_config=CacheConfig(**cache_kwargs))
    cluster.network.failure_detection_delay = 0.002
    return cluster


def scan_query(schema):
    return LogicalQuery(LogicalScan(schema), name="scan_all")


class TestResultCacheAcrossCrashRestart:
    def test_publisher_crash_mid_publish_never_leaves_a_stale_warm_hit(self):
        data = make_relation()
        cluster = build_cached_cluster()
        cluster.publish(data)
        query = scan_query(data.schema)
        warm_up = cluster.query(query)  # fills the initiator's result cache
        assert not warm_up.statistics.result_cache_hit

        # A second version is published from a node that crashes mid-publish.
        publisher = cluster.addresses[2]
        session = cluster.session(publisher)
        batch = UpdateBatch(data.schema, inserts=[(f"new{i}", "s0", 1000 + i) for i in range(5)])
        future = session.submit_publish(batch)
        cluster.fail_node(publisher, at_time=cluster.now + 0.0004)
        cluster.run()
        interrupted_acked = future.succeeded()

        # The crashed publisher restarts and the batch is re-published from a
        # live node (the runtime failed the original future if the crash won).
        cluster.restart_node(publisher)
        cluster.run()
        if not interrupted_acked:
            cluster.publish(
                UpdateBatch(data.schema, inserts=[(f"new{i}", "s0", 1000 + i) for i in range(5)])
            )

        # Whatever happened, the cached answer must byte-match a fresh
        # cache-bypassing execution at the current durable epoch.
        fresh = cluster.query(query, options=QueryOptions(use_result_cache=False))
        cached = cluster.query(query)
        assert result_bytes(cached.rows) == result_bytes(fresh.rows)
        assert len(fresh.rows) == 155
        # And the new version must actually be visible (no stale epoch served).
        assert any(str(row[0]).startswith("new") for row in cached.rows)

    def test_restarted_node_comes_back_with_cold_caches(self):
        data = make_relation()
        cluster = build_cached_cluster()
        cluster.publish(data)
        victim = cluster.addresses[1]
        # Warm the victim's node cache and result cache.
        cluster.retrieve("readings", from_address=victim)
        cluster.query(scan_query(data.schema), from_address=victim)
        assert cluster.nodes[victim].cache.bytes_used > 0
        cluster.fail_node(victim)
        cluster.run()
        cluster.restart_node(victim)
        cluster.run()
        # Cache memory is volatile; the durable store is not.
        assert cluster.nodes[victim].cache.bytes_used == 0
        assert cluster.nodes[victim].result_cache.store.bytes_used == 0
        assert cluster.storage(victim).tuple_count() > 0
        # And a post-restart query from the victim is correct (cold, refills).
        fresh = cluster.query(
            scan_query(data.schema), from_address=victim,
            options=QueryOptions(use_result_cache=False),
        )
        cached = cluster.query(scan_query(data.schema), from_address=victim)
        assert result_bytes(cached.rows) == result_bytes(fresh.rows)

    def test_warm_hits_resume_after_faults_heal(self):
        data = make_relation()
        cluster = build_cached_cluster()
        cluster.publish(data)
        query = scan_query(data.schema)
        victim = cluster.addresses[3]
        cluster.fail_node(victim)
        cluster.run()
        cluster.restart_node(victim)
        cluster.run()
        first = cluster.query(query)
        second = cluster.query(query)
        assert second.statistics.result_cache_hit
        assert result_bytes(first.rows) == result_bytes(second.rows)


class TestEvictionUnderFaultChurn:
    def test_tiny_budget_evicts_but_stays_coherent_across_a_crash(self):
        data = make_relation(rows=220)
        cluster = build_cached_cluster(node_budget_bytes=4096, result_budget_bytes=2048)
        cluster.publish(data)
        query = scan_query(data.schema)
        victim = cluster.addresses[2]
        for round_index in range(3):
            cluster.publish(UpdateBatch(
                data.schema,
                inserts=[(f"r{round_index}-{i}", "s1", i) for i in range(10)],
            ))
            cluster.retrieve("readings")
            cluster.query(query)
        cluster.fail_node(victim)
        cluster.run()
        cluster.restart_node(victim)
        cluster.run()
        cluster.publish(UpdateBatch(data.schema, inserts=[("final", "s1", 1)]))
        stats = cluster.cache_statistics()
        assert stats["node"].evictions > 0  # the budget is genuinely tiny
        fresh = cluster.query(query, options=QueryOptions(use_result_cache=False))
        cached = cluster.query(query)
        assert result_bytes(cached.rows) == result_bytes(fresh.rows)
        assert len(fresh.rows) == 220 + 30 + 1
