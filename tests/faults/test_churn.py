"""Seeded elastic-churn regressions: joins, graceful leaves, crash-restarts.

The churn planner extends the chaos scenarios (``repro.faults.scenarios``)
with membership *elasticity* — nodes joining mid-window, leaving gracefully,
and crash-restarting — layered over the usual mixed publish/retrieve/query
load.  Every test replays a pinned seed so a regression reproduces exactly;
the large-cluster sweep (``python -m repro.bench.scale --churn-sweep 200``)
runs the same scenario at 100 nodes across 200 seeds and must stay clean.

These seeds exercised the formerly-superlinear (and in places outright
wrong) paths while they were being fixed: the O(n²)-byte rejoin view
exchange, the O(n³) membership-diff probe, and the recovery-phase
``query.scan_done`` broadcast.
"""

import pytest

from repro.faults.scenarios import ScenarioConfig, ScenarioRunner


def churn_config(**overrides):
    base = dict(num_nodes=12, joins=1, leaves=1, restarts=1, num_ops=10)
    base.update(overrides)
    return ScenarioConfig(**base).churn_only()


def run_scenario(seed, config, allow_failed_ops=0):
    report = ScenarioRunner(seed, config).run()
    assert report.violations == [], (seed, report.violations)
    # Ops whose initiator crashed mid-flight may fail; every op is accounted
    # for either way, and the bound keeps failures to the churn victims.
    assert report.ops_failed <= allow_failed_ops, (seed, report)
    assert report.ops_acked + report.ops_failed == report.ops_submitted
    assert report.ops_acked > 0
    return report


class TestChurnScenarios:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_churn_only_preserves_invariants(self, seed):
        run_scenario(seed, churn_config(), allow_failed_ops=1)

    @pytest.mark.parametrize("seed", [1, 7, 13, 29])
    def test_heavy_churn_with_rejoin_interleavings(self, seed):
        # Multiple rejoins per window stress the one-seed view handshake and
        # the incremental-recovery rescan narrowing at a larger membership.
        run_scenario(seed, churn_config(num_nodes=24, joins=2, restarts=2),
                     allow_failed_ops=2)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_churn_composes_with_packet_chaos(self, seed):
        config = ScenarioConfig(
            num_nodes=10, joins=1, leaves=1, restarts=1, crashes=1, num_ops=10
        )
        run_scenario(seed, config, allow_failed_ops=2)

    def test_graceful_leave_only(self):
        run_scenario(11, churn_config(joins=0, restarts=0, leaves=2))

    def test_join_only(self):
        run_scenario(17, churn_config(leaves=0, restarts=0, joins=2))


class TestChurnConfigCompatibility:
    def test_churn_defaults_to_zero(self):
        # Pre-churn chaos seeds must replay identically: a default config
        # draws nothing from the RNG for churn.
        config = ScenarioConfig()
        assert (config.joins, config.leaves, config.restarts) == (0, 0, 0)

    def test_fault_free_zeroes_churn(self):
        config = ScenarioConfig(joins=3, leaves=2, restarts=1, crashes=2)
        quiet = config.fault_free()
        assert (quiet.joins, quiet.leaves, quiet.restarts) == (0, 0, 0)
        assert quiet.crashes == 0

    def test_churn_only_zeroes_packet_chaos(self):
        config = ScenarioConfig(joins=1, crashes=3, partitions=2, chaos_windows=1)
        churn = config.churn_only()
        assert churn.joins == 1
        assert churn.crashes == 0
        assert churn.partitions == 0
        assert churn.chaos_windows == 0
