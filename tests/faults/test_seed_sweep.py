"""The chaos seed sweep: randomized fault schedules must uphold every invariant.

Each seed derives a complete scenario — workload, crash-restarts, partitions,
message-chaos windows, slow nodes — and any failure replays exactly with the
command printed in the assertion message.  ``CHAOS_SEEDS`` scales the sweep
(the nightly CI job runs a much larger count than the default tier-1 run).
"""

import os

import pytest

from repro.faults.scenarios import ScenarioConfig, run_scenario

#: Tier-1 default; the nightly job sets CHAOS_SEEDS to a few hundred.
SEED_COUNT = int(os.environ.get("CHAOS_SEEDS", "24"))
CACHE_SEED_COUNT = max(4, SEED_COUNT // 4)


def assert_no_violations(report):
    assert report.ok, (
        f"seed {report.seed} violated {len(report.violations)} invariant(s):\n  "
        + "\n  ".join(report.violations)
        + f"\nreplay with: {report.replay_command()}"
    )


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_chaos_seed_upholds_all_invariants(seed):
    report = run_scenario(seed)
    assert_no_violations(report)
    # The stabilised cluster must be fully repaired, not merely consistent.
    assert report.ops_submitted == 14
    assert report.scheduler["in_flight"] == 0
    assert report.scheduler["queued"] == 0


@pytest.mark.parametrize("seed", range(CACHE_SEED_COUNT))
def test_chaos_seed_with_caching_enabled(seed):
    report = run_scenario(10_000 + seed, ScenarioConfig(cache=True))
    assert_no_violations(report)


def test_combined_heavy_fault_mix():
    config = ScenarioConfig(crashes=2, partitions=2, chaos_windows=2, slow_nodes=2)
    for seed in range(6):
        report = run_scenario(20_000 + seed, config)
        assert_no_violations(report)


def test_fault_free_scenario_has_full_availability():
    report = run_scenario(0, ScenarioConfig().fault_free())
    assert_no_violations(report)
    assert report.availability == 1.0
    assert report.recovery_seconds == 0.0


def test_reports_are_deterministic_per_seed():
    first = run_scenario(123)
    second = run_scenario(123)
    assert first.summary() == second.summary()
    assert first.quiesced_at == second.quiesced_at
    assert first.faults == second.faults


def test_asymmetric_partitions_uphold_all_invariants():
    # One-way cuts (a muted minority whose outbound traffic is dropped) are
    # the partition shape of gray failures; the invariants must hold just as
    # they do for bidirectional cuts.
    config = ScenarioConfig(partitions=0, asymmetric_partitions=2)
    started = 0
    for seed in range(6):
        report = run_scenario(30_000 + seed, config)
        assert_no_violations(report)
        started += report.faults["partitions_started"]
        assert report.faults["partitions_healed"] == report.faults["partitions_started"]
    assert started > 0  # the budget actually scheduled cuts


def test_zero_asymmetric_budget_replays_existing_seeds_exactly():
    # The new budget defaults to 0 and is planned after the bidirectional
    # partitions, so pre-existing seeds keep their exact fault schedules.
    baseline = run_scenario(123)
    explicit = run_scenario(123, ScenarioConfig(asymmetric_partitions=0))
    assert baseline.summary() == explicit.summary()
    assert baseline.faults == explicit.faults
    assert baseline.quiesced_at == explicit.quiesced_at


def test_asymmetric_scenarios_are_deterministic_per_seed():
    config = ScenarioConfig(asymmetric_partitions=1)
    first = run_scenario(456, config)
    second = run_scenario(456, config)
    assert first.summary() == second.summary()
    assert first.faults == second.faults
    assert first.quiesced_at == second.quiesced_at
