"""Seeded silent-corruption sweep: no acked row is ever served corrupted.

Every seed derives a scenario whose fault schedule includes at-rest
corruption events racing the workload; the
``corruption detected and repaired`` invariant then holds that every
injected corruption was caught and healed within the configured scrub
bound, on top of every pre-existing invariant (result correctness, replica
convergence, ...).  ``CORRUPTION_SEEDS`` scales the sweep (the nightly
scrub-smoke job runs more seeds than the tier-1 default); any failure
replays exactly with the command printed in the assertion message.
"""

import os

import pytest

from repro.faults.scenarios import ScenarioConfig, run_scenario

#: Tier-1 default; the nightly scrub-smoke job raises CORRUPTION_SEEDS.
SEED_COUNT = int(os.environ.get("CORRUPTION_SEEDS", "24"))
CACHE_SEED_COUNT = max(4, SEED_COUNT // 4)


def assert_no_violations(report):
    assert report.ok, (
        f"seed {report.seed} violated {len(report.violations)} invariant(s):\n  "
        + "\n  ".join(report.violations)
        + f"\nreplay with: {report.replay_command()}"
    )


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_corruption_seed_upholds_all_invariants(seed):
    report = run_scenario(40_000 + seed, ScenarioConfig(corruptions=3))
    assert_no_violations(report)
    assert report.faults["corruptions_injected"] > 0


@pytest.mark.parametrize("seed", range(CACHE_SEED_COUNT))
def test_corrupted_cache_fill_is_never_served(seed):
    # With caching on, the injector may also flip bits inside cached scan
    # batches; the result-correctness invariant proves a corrupted fill is
    # re-fetched, never served.
    report = run_scenario(50_000 + seed, ScenarioConfig(corruptions=3, cache=True))
    assert_no_violations(report)


def test_corruption_composed_with_crash_restart_and_partitions():
    config = ScenarioConfig(corruptions=2, crashes=1, partitions=1, restarts=1)
    for seed in range(6):
        report = run_scenario(60_000 + seed, config)
        assert_no_violations(report)


def test_corruption_scenarios_are_deterministic_per_seed():
    config = ScenarioConfig(corruptions=3)
    first = run_scenario(777, config)
    second = run_scenario(777, config)
    assert first.summary() == second.summary()
    assert first.faults == second.faults
    assert first.quiesced_at == second.quiesced_at


def test_zero_corruption_budget_replays_existing_seeds_exactly():
    # The corruption budget defaults to 0 and its instants are planned last,
    # so pre-existing seeds keep their exact fault schedules.
    baseline = run_scenario(123)
    explicit = run_scenario(123, ScenarioConfig(corruptions=0))
    assert baseline.summary() == explicit.summary()
    assert baseline.faults == explicit.faults
    assert baseline.quiesced_at == explicit.quiesced_at


def test_integrity_layer_alone_does_not_change_the_schedule():
    # Checksums piggyback on existing messages: running with the layer on
    # (but nothing corrupted) leaves the fault schedule and outcome intact.
    baseline = run_scenario(321)
    checked = run_scenario(321, ScenarioConfig(integrity=True))
    assert checked.faults == baseline.faults
    assert checked.summary()["acked"] == baseline.summary()["acked"]
    assert checked.ok


def test_replay_command_names_the_corruption_budget():
    report = run_scenario(40_001, ScenarioConfig(corruptions=3, cache=True))
    assert "--corruptions 3" in report.replay_command()
    assert "--cache" in report.replay_command()
