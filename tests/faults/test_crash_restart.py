"""Crash-*restart* semantics: durable replay, rejoin, repaired replication.

The seed system modelled crash-stop only.  These tests cover the full cycle:
a node crashes, its durable local store survives, it restarts under a new
incarnation, rejoins the membership through the join protocol, learns the
current epoch through the gossip pull, inherits ranges back, and background
replication restores the replication factor — after which queries, retrievals
and publishes behave exactly as if the node had never been away.
"""

import pytest

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.query.reference import evaluate_query, normalise
from repro.query.logical import LogicalQuery, LogicalScan


def make_relation(rows=200, name="readings"):
    data = RelationData(Schema(name, ["k", "site", "v"], key=["k"]))
    for i in range(rows):
        data.add(f"k{i:04d}", f"s{i % 9}", i)
    return data


def build_cluster(num_nodes=6, detection_delay=0.002):
    cluster = Cluster(num_nodes)
    cluster.network.failure_detection_delay = detection_delay
    return cluster


class TestRestartMechanics:
    def test_restart_bumps_incarnation_and_revives(self):
        cluster = build_cluster()
        victim = cluster.addresses[2]
        node = cluster.network.node(victim)
        cluster.fail_node(victim)
        assert not node.alive
        assert victim in cluster.failed_addresses
        cluster.restart_node(victim)
        assert node.alive
        assert node.incarnation == 1
        assert victim not in cluster.failed_addresses

    def test_durable_store_survives_the_crash(self):
        data = make_relation()
        cluster = build_cluster()
        cluster.publish(data)
        victim = cluster.addresses[1]
        held_before = cluster.storage(victim).tuple_count()
        assert held_before > 0
        cluster.fail_node(victim)
        cluster.run()
        cluster.restart_node(victim)
        cluster.run()
        # The B+-tree databases play BerkeleyDB's role: they are durable.
        assert cluster.storage(victim).tuple_count() == held_before

    def test_rejoin_restores_membership_agreement(self):
        cluster = build_cluster()
        victim = cluster.addresses[3]
        cluster.fail_node(victim)
        cluster.run()
        for address in cluster.live_addresses():
            assert victim not in cluster.nodes[address].membership.members()
        cluster.restart_node(victim)
        cluster.run()
        live = sorted(cluster.live_addresses())
        assert victim in live
        for address in live:
            assert sorted(cluster.nodes[address].membership.members()) == live

    def test_gossip_pull_teaches_the_rejoiner_the_current_epoch(self):
        data = make_relation()
        cluster = build_cluster()
        cluster.publish(data)
        victim = cluster.addresses[4]
        cluster.fail_node(victim)
        cluster.run()
        # Two more versions are published while the victim is down.
        from repro.storage.client import UpdateBatch

        for i in range(2):
            batch = UpdateBatch(data.schema, inserts=[(f"x{i}", "s0", 1000 + i)])
            cluster.publish(batch)
        assert cluster.nodes[victim].gossip.current_epoch < cluster.durable_epoch
        cluster.restart_node(victim)
        cluster.run()
        assert cluster.nodes[victim].gossip.current_epoch == cluster.durable_epoch

    def test_stale_scheduled_crash_does_not_kill_the_new_incarnation(self):
        cluster = build_cluster()
        victim = cluster.addresses[0]
        cluster.fail_node(victim, at_time=1.0)
        cluster.run(until=0.5)
        cluster.network.fail_node(victim)   # crash now...
        cluster.restart_node(victim)        # ...and restart before t=1.0
        cluster.run()
        # The pre-scheduled crash was aimed at incarnation 0 and must not
        # fire against the restarted process.
        assert cluster.network.node(victim).alive


class TestServiceAfterRejoin:
    def test_queries_correct_after_crash_restart_cycle(self):
        data = make_relation(300)
        cluster = build_cluster()
        cluster.publish(data)
        victim = cluster.addresses[2]
        cluster.fail_node(victim)
        cluster.run()
        cluster.restart_node(victim)
        cluster.run()
        cluster.run_background_replication()
        query = LogicalQuery(LogicalScan(data.schema), name="scan_all")
        result = cluster.query(query)
        expected = evaluate_query(query, {"readings": data})
        assert normalise(result.rows) == normalise(expected)

    def test_rejoined_node_participates_in_new_queries(self):
        data = make_relation(150)
        cluster = build_cluster(num_nodes=5)
        cluster.publish(data)
        victim = cluster.addresses[1]
        cluster.fail_node(victim)
        cluster.run()
        cluster.restart_node(victim)
        cluster.run()
        from repro.overlay.routing import physical_address

        snapshot = cluster.snapshot()
        assert victim in {physical_address(entry) for entry in snapshot.nodes}

    def test_publish_after_rejoin_builds_on_latest_version(self):
        from repro.storage.client import UpdateBatch

        data = make_relation(120)
        cluster = build_cluster()
        first = cluster.publish(data)
        victim = cluster.addresses[3]
        cluster.fail_node(victim)
        cluster.run()
        second = cluster.publish(
            UpdateBatch(data.schema, inserts=[("down0", "s1", 1)])
        )
        cluster.restart_node(victim)
        cluster.run()
        third = cluster.publish(
            UpdateBatch(data.schema, inserts=[("up0", "s1", 2)])
        )
        assert first < second < third
        rows = cluster.retrieve("readings", epoch=third).rows()
        keys = {row[0] for row in rows}
        # Nothing published while the node was down may vanish afterwards.
        assert "down0" in keys and "up0" in keys
        assert len(rows) == 122

    def test_replication_factor_restored_after_rejoin(self):
        data = make_relation(200)
        cluster = build_cluster(num_nodes=5)
        cluster.publish(data)
        victim = cluster.addresses[0]
        cluster.fail_node(victim)
        cluster.run()
        cluster.run_background_replication()
        cluster.restart_node(victim)
        cluster.run()
        for _ in range(4):
            if cluster.run_background_replication().items_copied == 0:
                break
        holders: dict[tuple, set[str]] = {}
        for address in cluster.live_addresses():
            for tup in cluster.storage(address).all_local_tuples("readings"):
                key = (tup.tuple_id.key_values, tup.tuple_id.epoch)
                holders.setdefault(key, set()).add(address)
        assert min(len(nodes) for nodes in holders.values()) >= 2
        fully = sum(1 for nodes in holders.values() if len(nodes) >= 3)
        assert fully >= 0.98 * len(holders)


class TestInitiatorCrash:
    def test_in_flight_ops_of_a_crashed_initiator_fail(self):
        data = make_relation(200)
        cluster = build_cluster()
        cluster.publish(data)
        session = cluster.session(cluster.addresses[2])
        future = session.submit_retrieve("readings")
        cluster.network.fail_node(cluster.addresses[2])
        cluster.run()
        assert future.done() and not future.succeeded()
        stats = cluster.runtime.scheduler.stats
        assert stats.in_flight == 0

    def test_restart_abandons_pre_crash_retrievals(self):
        """A retrieval in flight at the crash must not resurrect as a zombie
        on the restarted node when a later unrelated failure fires."""
        data = make_relation(200)
        cluster = build_cluster()
        cluster.publish(data)
        victim = cluster.addresses[2]
        future = cluster.session(victim).submit_retrieve("readings")
        cluster.network.fail_node(victim)
        cluster.run()
        assert future.done() and not future.succeeded()
        cluster.restart_node(victim)
        cluster.run()
        client = cluster.nodes[victim].storage_client
        assert client._retrievals == {}
        traffic_before = cluster.traffic_snapshot().total_bytes
        cluster.fail_node(cluster.addresses[4])  # unrelated later failure
        cluster.run()
        # The only traffic after the second failure is its own bookkeeping —
        # no resurrected retrieval fans out from the restarted node.
        assert client._retrievals == {}
        assert cluster.traffic_snapshot().total_bytes == traffic_before

    def test_op_submitted_from_a_down_node_fails_loudly(self):
        data = make_relation(100)
        cluster = build_cluster()
        cluster.publish(data)
        victim = cluster.addresses[1]
        cluster.network.fail_node(victim)
        future = cluster.session(victim).submit_retrieve("readings")
        cluster.run()
        assert future.done() and not future.succeeded()
        with pytest.raises(Exception):
            future.result()
