"""Regression tests: Cluster.fail_node bookkeeping around scheduled failures.

After any scheduled (``fail_node_at``) failure has been processed, three
views of liveness must agree: the simulator's ground truth
(``Network.live_nodes``), the cluster's crash-instant bookkeeping
(``Cluster.failed_addresses``) and — once the detection delay elapsed —
every live node's membership view and the routing snapshots derived from it.
The trickiest case is a query in flight at the exact failure tick.
"""

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.overlay.routing import physical_address
from repro.query.logical import LogicalQuery, LogicalScan
from repro.query.reference import evaluate_query, normalise
from repro.query.service import RECOVERY_INCREMENTAL, RECOVERY_RESTART, QueryOptions


def make_relation(rows=200):
    data = RelationData(Schema("R", ["x", "y"], key=["x"]))
    for i in range(rows):
        data.add(f"k{i}", i)
    return data


def assert_views_agree(cluster):
    live = sorted(cluster.live_addresses())
    assert not (set(live) & cluster.failed_addresses)
    for address in live:
        assert sorted(cluster.nodes[address].membership.members()) == live
    snapshot_nodes = sorted({physical_address(e) for e in cluster.snapshot().nodes})
    assert snapshot_nodes == live


class TestScheduledFailureBookkeeping:
    def test_failed_addresses_track_scheduled_failures(self):
        cluster = Cluster(5)
        victim = cluster.addresses[2]
        cluster.fail_node(victim, at_time=0.5)
        assert victim not in cluster.failed_addresses  # not crashed yet
        cluster.run()
        assert victim in cluster.failed_addresses
        assert victim not in cluster.live_addresses()
        assert_views_agree(cluster)

    def test_query_in_flight_at_the_exact_failure_tick(self):
        """The failure event fires at the same virtual instant the query's
        start messages are scheduled — before any of them deliver."""
        for mode in (RECOVERY_INCREMENTAL, RECOVERY_RESTART):
            data = make_relation()
            cluster = Cluster(6)
            cluster.network.failure_detection_delay = 0.002
            cluster.publish_relations([data])
            cluster.enable_query_processing()
            victim = cluster.addresses[3]
            cluster.fail_node(victim, at_time=cluster.now)  # exact tick
            query = LogicalQuery(LogicalScan(data.schema), name="copy")
            result = cluster.query(query, options=QueryOptions(recovery_mode=mode))
            expected = evaluate_query(query, {"R": data})
            assert normalise(result.rows) == normalise(expected)
            assert_views_agree(cluster)

    def test_failure_scheduled_immediately_after_submission(self):
        """Submission first, failure event second, same virtual instant."""
        data = make_relation()
        cluster = Cluster(6)
        cluster.network.failure_detection_delay = 0.002
        cluster.publish_relations([data])
        cluster.enable_query_processing()
        victim = cluster.addresses[3]
        query = LogicalQuery(LogicalScan(data.schema), name="copy")
        future = cluster.session().submit_query(query)
        cluster.fail_node(victim, at_time=cluster.now)
        cluster.run()
        assert len(future.result().rows) == len(data.rows)
        assert_views_agree(cluster)

    def test_stale_scheduled_failure_is_bound_to_the_incarnation(self):
        """A node that crashes and restarts before a pre-scheduled failure
        fires must stay alive: the schedule was aimed at the old process."""
        cluster = Cluster(4)
        victim = cluster.addresses[2]
        cluster.fail_node(victim, at_time=1.0)
        cluster.run(until=0.4)
        cluster.network.fail_node(victim)
        cluster.restart_node(victim)
        cluster.run()  # the t=1.0 schedule fires here, against incarnation 1
        assert cluster.network.node(victim).alive
        assert victim not in cluster.failed_addresses
        assert_views_agree(cluster)

    def test_two_scheduled_failures_one_node(self):
        """A second scheduled crash of an already-dead node is a no-op, and
        the bookkeeping does not double-count."""
        cluster = Cluster(5)
        victim = cluster.addresses[1]
        cluster.fail_node(victim, at_time=0.1)
        cluster.fail_node(victim, at_time=0.2)
        cluster.run()
        assert victim in cluster.failed_addresses
        assert sorted(cluster.live_addresses()) == sorted(
            a for a in cluster.addresses if a != victim
        )
        assert_views_agree(cluster)
