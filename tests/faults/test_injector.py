"""Unit tests for the fault injector and the reliable-channel transport.

The contract under test: whatever packet-level chaos the injector applies —
loss, duplication, delay, reordering, partitions — the application-visible
message stream between two nodes stays exactly-once and FIFO (what the
paper's persistent TCP connections provide), merely delayed; and every run
is a pure function of the injector's seed.
"""

from repro.faults.injector import FaultInjector, LinkChaos
from repro.net.simnet import Network


def build_pair():
    network = Network(latency=0.001)
    a = network.add_node("a")
    b = network.add_node("b")
    received: list[tuple[float, int]] = []
    b.register_handler("msg", lambda m: received.append((network.now, m.payload["n"])))
    return network, a, b, received


def send_sequence(network, count=20, size=100):
    for n in range(count):
        network.send("a", "b", "msg", {"n": n}, size)


class TestLinkChaos:
    def test_clean_injector_changes_nothing(self):
        plain_net, _a, _b, plain_received = build_pair()
        send_sequence(plain_net)
        plain_net.run()

        chaos_net, _a2, _b2, chaos_received = build_pair()
        FaultInjector(chaos_net, seed=1)
        send_sequence(chaos_net)
        chaos_net.run()
        assert chaos_received == plain_received

    def test_dropped_messages_are_retransmitted_exactly_once(self):
        network, _a, _b, received = build_pair()
        injector = FaultInjector(network, seed=7)
        injector.set_default_chaos(LinkChaos(drop=0.5))
        send_sequence(network, count=30)
        network.run()
        assert [n for _t, n in received] == list(range(30))
        assert injector.stats.dropped > 0
        assert injector.stats.retransmits >= injector.stats.dropped

    def test_duplicates_are_delivered_exactly_once(self):
        network, _a, _b, received = build_pair()
        injector = FaultInjector(network, seed=3)
        injector.set_default_chaos(LinkChaos(duplicate=1.0))
        send_sequence(network, count=15)
        network.run()
        assert [n for _t, n in received] == list(range(15))
        assert injector.stats.duplicated == 15
        assert injector.stats.deduplicated >= 1

    def test_reordering_is_masked_into_fifo(self):
        network, _a, _b, received = build_pair()
        injector = FaultInjector(network, seed=11)
        injector.set_default_chaos(
            LinkChaos(delay=0.01, reorder=0.8, reorder_delay=0.02, drop=0.2)
        )
        send_sequence(network, count=40)
        network.run()
        assert [n for _t, n in received] == list(range(40))

    def test_chaos_window_clears_itself(self):
        network, _a, _b, received = build_pair()
        injector = FaultInjector(network, seed=5)
        injector.chaos_window(LinkChaos(drop=0.9), start=0.0, duration=0.5)
        network.run()
        assert injector.default_chaos.is_clean()
        assert injector.quiescent()


class TestDeterminism:
    def run_once(self, seed):
        network, _a, _b, received = build_pair()
        injector = FaultInjector(network, seed=seed)
        injector.set_default_chaos(
            LinkChaos(drop=0.3, duplicate=0.2, delay=0.005, reorder=0.5)
        )
        send_sequence(network, count=25)
        network.run()
        return received, injector.stats.snapshot()

    def test_same_seed_same_trace(self):
        first = self.run_once(42)
        second = self.run_once(42)
        assert first == second

    def test_different_seed_different_trace(self):
        assert self.run_once(1) != self.run_once(2)


class TestPartitions:
    def test_partition_blocks_both_directions_until_heal(self):
        network = Network(latency=0.001)
        a, b = network.add_node("a"), network.add_node("b")
        got_a, got_b = [], []
        a.register_handler("msg", lambda m: got_a.append(network.now))
        b.register_handler("msg", lambda m: got_b.append(network.now))
        injector = FaultInjector(network, seed=0)
        partition_id = injector.partition(["a"], ["b"])
        network.send("a", "b", "msg", {}, 10)
        network.send("b", "a", "msg", {}, 10)
        network.schedule(0.3, lambda: injector.heal(partition_id))
        network.run()
        # Both messages were blocked while the partition was up and delivered
        # by retransmission after the heal at t=0.3.
        assert len(got_a) == len(got_b) == 1
        assert got_a[0] >= 0.3 and got_b[0] >= 0.3
        assert injector.stats.blocked > 0

    def test_scheduled_heal(self):
        network = Network(latency=0.001)
        network.add_node("a")
        b = network.add_node("b")
        got = []
        b.register_handler("msg", lambda m: got.append(network.now))
        injector = FaultInjector(network, seed=0)
        injector.partition(["a"], ["b"], heal_after=0.2)
        network.send("a", "b", "msg", {}, 10)
        network.run()
        assert len(got) == 1 and got[0] >= 0.2
        assert injector.active_partitions == 0

    def test_long_partitions_never_abandon_messages(self):
        # Waiting out a partition must not consume the retransmission budget:
        # even a partition far longer than the loss-abandonment window stalls
        # the message instead of silently dropping it.
        network = Network(latency=0.001)
        network.add_node("a")
        b = network.add_node("b")
        got = []
        b.register_handler("msg", lambda m: got.append(network.now))
        injector = FaultInjector(network, seed=0)
        injector.partition(["a"], ["b"], heal_after=30.0)
        network.send("a", "b", "msg", {}, 10)
        network.run()
        assert len(got) == 1 and got[0] >= 30.0
        assert injector.stats.abandoned == 0

    def test_in_flight_message_is_cut_by_partition(self):
        # A long transfer is mid-flight when the partition starts; it must be
        # retransmitted after the heal, not slip through the cut.
        network = Network(latency=0.05)
        network.add_node("a")
        b = network.add_node("b")
        got = []
        b.register_handler("msg", lambda m: got.append(network.now))
        injector = FaultInjector(network, seed=0)
        network.send("a", "b", "msg", {}, 10)  # arrives around t=0.05
        network.schedule(0.01, lambda: injector.partition(["a"], ["b"], heal_after=0.5))
        network.run()
        assert len(got) == 1
        assert got[0] >= 0.51


class TestDegradation:
    def test_degrade_and_auto_restore(self):
        network = Network()
        node = network.add_node("a")
        original = node.host
        injector = FaultInjector(network, seed=0)
        injector.degrade_node("a", cpu_slowdown=4.0, bandwidth_slowdown=2.0, duration=1.0)
        assert node.host.cpu_factor == original.cpu_factor / 4.0
        assert node.host.egress_bandwidth == original.egress_bandwidth / 2.0
        network.run()
        assert node.host == original
        assert injector.quiescent()

    def test_restart_lifts_degradation(self):
        network = Network()
        node = network.add_node("a")
        original = node.host
        injector = FaultInjector(network, seed=0)
        injector.degrade_node("a", cpu_slowdown=8.0)
        network.fail_node("a")
        network.restart_node("a")
        assert node.host == original
        assert injector.quiescent()


class TestAsymmetricPartitions:
    def build_triple(self):
        network = Network(latency=0.001)
        got = {}
        for address in ("a", "b"):
            node = network.add_node(address)
            got[address] = []
            node.register_handler(
                "msg", lambda m, address=address: got[address].append(network.now)
            )
        return network, got

    def test_one_way_cut_blocks_only_the_named_direction(self):
        network, got = self.build_triple()
        injector = FaultInjector(network, seed=0)
        partition_id = injector.partition(["a"], ["b"], symmetric=False)
        network.send("a", "b", "msg", {}, 10)  # crosses the cut: blocked
        network.send("b", "a", "msg", {}, 10)  # reverse direction: delivers
        network.run(until=0.2)
        assert len(got["a"]) == 1 and got["a"][0] < 0.1
        assert got["b"] == []
        injector.heal(partition_id)
        network.run()
        assert len(got["b"]) == 1  # retransmission lands after the heal

    def test_blocked_is_directional(self):
        network, _got = self.build_triple()
        injector = FaultInjector(network, seed=0)
        injector.partition(["a"], ["b"], symmetric=False)
        assert injector.blocked("a", "b") is True
        assert injector.blocked("b", "a") is False

    def test_symmetric_default_blocks_both_directions(self):
        network, _got = self.build_triple()
        injector = FaultInjector(network, seed=0)
        injector.partition(["a"], ["b"])
        assert injector.blocked("a", "b") is True
        assert injector.blocked("b", "a") is True

    def test_half_open_link_loses_replies_not_requests(self):
        # The canonical gray failure: b hears a perfectly well, but a never
        # hears b back — a request/reply exchange over the half-open link
        # stalls on the reply leg only.
        network = Network(latency=0.001)
        a, b = network.add_node("a"), network.add_node("b")
        replies = []
        b.register_handler(
            "ping", lambda m: network.send("b", "a", "pong", {}, 10)
        )
        a.register_handler("pong", lambda m: replies.append(network.now))
        injector = FaultInjector(network, seed=0)
        injector.partition(["b"], ["a"], symmetric=False, heal_after=0.25)
        network.send("a", "b", "ping", {}, 10)
        network.run()
        assert len(replies) == 1 and replies[0] >= 0.25


class TestRetransmitJitter:
    def test_pairless_delay_is_pure_backoff(self):
        network, _a, _b, _received = build_pair()
        injector = FaultInjector(network, seed=3)
        assert injector.retransmit_delay(0) == injector.rto
        assert injector.retransmit_delay(3) == injector.rto * 8
        # The exponent is capped so long partitions stay affordable.
        assert injector.retransmit_delay(50) == injector.rto * 32

    def test_jitter_is_bounded_by_one_rto(self):
        network, _a, _b, _received = build_pair()
        injector = FaultInjector(network, seed=3)
        for attempt in range(8):
            base = injector.retransmit_delay(attempt)
            jittered = injector.retransmit_delay(attempt, "a", "b")
            assert base <= jittered < base + injector.rto

    def test_jitter_is_deterministic_per_seed(self):
        network, _a, _b, _received = build_pair()
        first = FaultInjector(network, seed=7)
        second = FaultInjector(Network(latency=0.001), seed=7)
        other_seed = FaultInjector(Network(latency=0.001), seed=8)
        for attempt in range(4):
            assert first.retransmit_delay(attempt, "a", "b") == second.retransmit_delay(
                attempt, "a", "b"
            )
        assert any(
            first.retransmit_delay(attempt, "a", "b")
            != other_seed.retransmit_delay(attempt, "a", "b")
            for attempt in range(4)
        )

    def test_pairs_are_decorrelated(self):
        # The point of the jitter: after a heal, blocked pairs must not
        # release their retries in one synchronized wave.
        network, _a, _b, _received = build_pair()
        injector = FaultInjector(network, seed=5)
        delays = {
            (src, dst): injector.retransmit_delay(1, src, dst)
            for src in ("a", "b", "c")
            for dst in ("a", "b", "c")
            if src != dst
        }
        assert len(set(delays.values())) == len(delays)

    def test_jitter_does_not_consume_the_fate_rng(self):
        # Jitter comes from a CRC, not the chaos RNG stream: computing it
        # must not shift the fates of subsequent transmissions.
        network, _a, _b, received = build_pair()
        injector = FaultInjector(network, seed=9)
        injector.set_default_chaos(LinkChaos(drop=0.2, duplicate=0.1))
        for _ in range(100):
            injector.retransmit_delay(2, "a", "b")
        send_sequence(network)
        network.run()
        reference_net, _a2, _b2, reference_received = build_pair()
        reference = FaultInjector(reference_net, seed=9)
        reference.set_default_chaos(LinkChaos(drop=0.2, duplicate=0.1))
        send_sequence(reference_net)
        reference_net.run()
        assert received == reference_received
