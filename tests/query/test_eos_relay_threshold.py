"""Boundary tests for the initiator EOS relay (Section IV-B, large clusters).

Rehash exchanges must tell every participant when each sender is done, but
most sender/receiver pairs exchange zero rows.  Below
``QueryService.EOS_RELAY_MIN_PARTICIPANTS`` each sender closes its empty
pairs directly with per-pair ``query.eos`` messages; at the threshold and
above, the senders report an aggregate ``query.eos_summary`` to the
initiator, which relays the end-of-stream on their behalf — collapsing the
O(n²) empty-pair traffic.  These tests pin the switch at exactly the
threshold and check the answer is identical on both sides of it.
"""

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.query.logical import LogicalJoin, LogicalQuery, LogicalScan
from repro.query.reference import evaluate_query
from repro.query.service import QueryOptions, QueryService

THRESHOLD = QueryService.EOS_RELAY_MIN_PARTICIPANTS


def make_relations():
    r = RelationData(Schema("R", ["x", "y", "v"], key=["x"]))
    s = RelationData(Schema("S", ["sk", "yy", "z"], key=["sk"]))
    for i in range(90):
        r.add(f"x{i:03d}", f"y{i % 30}", i)
    for i in range(60):
        s.add(f"s{i:03d}", f"y{i % 30}", i * 10)
    return r, s


def run_join(num_nodes):
    """Run a rehash join on ``num_nodes`` and return (traffic delta, rows)."""
    r, s = make_relations()
    cluster = Cluster(num_nodes)
    cluster.publish(r)
    cluster.publish(s)
    cluster.enable_query_processing()
    query = LogicalQuery(
        LogicalJoin(LogicalScan(r.schema), LogicalScan(s.schema), [("y", "yy")]),
        name="relay_join",
    )
    before = cluster.network.traffic.snapshot()
    result = cluster.query(query, options=QueryOptions(use_result_cache=False))
    delta = before.delta(cluster.network.traffic.snapshot())
    expected = evaluate_query(query, {"R": r, "S": s})
    assert sorted(result.rows) == sorted(expected)
    return delta


class TestEosRelayThreshold:
    def test_threshold_is_sixteen(self):
        # The boundary tests below pin the exact participant counts; if the
        # constant moves they must move with it.
        assert THRESHOLD == 16

    def test_below_threshold_uses_direct_eos(self):
        delta = run_join(THRESHOLD - 1)
        assert delta.messages_by_kind.get("query.eos_summary", 0) == 0
        assert delta.messages_by_kind.get("query.eos", 0) > 0

    def test_at_threshold_switches_to_relay(self):
        delta = run_join(THRESHOLD)
        # Every sender reports once per rehash exchange, even with nothing
        # to relay — silence would stall the aggregate relay.
        assert delta.messages_by_kind.get("query.eos_summary", 0) > 0

    def test_above_threshold_keeps_relay(self):
        delta = run_join(THRESHOLD + 1)
        assert delta.messages_by_kind.get("query.eos_summary", 0) > 0

    def test_relay_collapses_empty_pair_eos_traffic(self):
        below = run_join(THRESHOLD - 1)
        at = run_join(THRESHOLD)
        # One more node, yet the per-pair eos count collapses: the relay
        # replaces O(n^2) empty-pair messages with O(n) summaries.
        assert (
            at.messages_by_kind.get("query.eos", 0)
            < below.messages_by_kind.get("query.eos", 0) / 4
        )
