"""Pushdown-vs-reference equivalence suite (the wire-traffic optimizer).

The optimizer may move predicate evaluation and projection to the index/data
nodes and prune index pages at plan time, but it must never change a single
result row.  Every test here executes a query three ways — the pushed plan
(planner default), the evaluate-at-the-participant baseline
(``PlannerOptions(enable_pushdown=False)``) and the single-process oracle —
and requires identical rows.  Covered edges: every TPC-H figure query,
NULL-heavy relations (NULL comparison falsity and ``IN`` lists containing
NULL), duplicate output attributes in hand-built plans, page pruning (which
must *provably* never skip a matching page) and a seeded chaos sweep with
nodes crashing and restarting mid-scan.

Run with a pinned ``PYTHONHASHSEED`` (the tier-1 wrapper does) — the rows
must match with and without caching, and byte counts in the traffic
assertions are deterministic.
"""

import os

import pytest

from repro.cache import CacheConfig
from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.net.profiles import LAN_GIGABIT
from repro.optimizer.planner import PlannerOptions, compile_query
from repro.optimizer.catalog import Catalog
from repro.query.expressions import (
    AggregateSpec,
    Count,
    InList,
    Sum,
    and_,
    col,
    not_,
    or_,
)
from repro.query.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)
from repro.query.physical import PhysicalPlan, PlanBuilder
from repro.query.pushdown import candidate_partition_hashes
from repro.query.reference import evaluate_query, normalise
from repro.query.service import (
    RECOVERY_INCREMENTAL,
    RECOVERY_RESTART,
    QueryOptions,
    QueryService,
)
from repro.query.sql import parse_query
from repro.workloads import tpch

TPCH_SCALE = 0.25
NO_CACHE = QueryOptions(use_result_cache=False)
BASELINE = PlannerOptions(enable_pushdown=False)
NO_PRUNE = PlannerOptions(enable_page_pruning=False)
NO_ENCODING = PlannerOptions(enable_encoding=False)


@pytest.fixture(scope="module")
def tpch_instance():
    return tpch.generate(TPCH_SCALE, seed=11)


@pytest.fixture(scope="module")
def tpch_cluster(tpch_instance):
    cluster = Cluster(6, profile=LAN_GIGABIT)
    cluster.publish_relations(tpch_instance.relation_list())
    return cluster


@pytest.fixture(scope="module")
def cached_cluster(tpch_instance):
    cluster = Cluster(5, profile=LAN_GIGABIT, cache_config=CacheConfig())
    cluster.publish_relations(tpch_instance.relation_list())
    return cluster


class TestFigureQueries:
    """Every TPC-H figure query: pushed == baseline == oracle."""

    @pytest.mark.parametrize("query_name", tpch.QUERIES)
    def test_pushdown_matches_reference(self, tpch_cluster, tpch_instance, query_name):
        query = tpch.query(query_name)
        expected = normalise(evaluate_query(query, tpch_instance.relations))
        pushed = tpch_cluster.query(tpch.query(query_name), options=NO_CACHE)
        assert normalise(pushed.rows) == expected

    @pytest.mark.parametrize("query_name", tpch.QUERIES)
    def test_baseline_matches_reference(self, tpch_cluster, tpch_instance, query_name):
        query = tpch.query(query_name)
        expected = normalise(evaluate_query(query, tpch_instance.relations))
        baseline = tpch_cluster.query(
            tpch.query(query_name), options=NO_CACHE, planner_options=BASELINE
        )
        assert normalise(baseline.rows) == expected

    @pytest.mark.parametrize("query_name", tpch.QUERIES)
    def test_with_caching_cold_and_warm(self, cached_cluster, tpch_instance, query_name):
        query = tpch.query(query_name)
        expected = normalise(evaluate_query(query, tpch_instance.relations))
        cold = cached_cluster.query(tpch.query(query_name))
        warm = cached_cluster.query(tpch.query(query_name))
        assert normalise(cold.rows) == expected
        assert normalise(warm.rows) == expected
        assert warm.statistics.result_cache_hit

    @pytest.mark.parametrize("query_name", tpch.QUERIES)
    def test_unencoded_matches_reference(self, tpch_cluster, tpch_instance, query_name):
        """``enable_encoding=False`` A/B: raw-batch wire path, identical rows."""
        query = tpch.query(query_name)
        expected = normalise(evaluate_query(query, tpch_instance.relations))
        unencoded = tpch_cluster.query(
            tpch.query(query_name), options=NO_CACHE, planner_options=NO_ENCODING
        )
        assert normalise(unencoded.rows) == expected

    def test_pushdown_and_baseline_fingerprints_differ(self, tpch_instance):
        """Pushed and lifted plans must not share a result-cache entry."""
        from repro.cache.result import plan_fingerprint

        catalog = Catalog.from_relations(tpch_instance.relation_list())
        pushed = compile_query(tpch.query("Q6"), catalog).plan
        lifted = compile_query(tpch.query("Q6"), catalog, options=BASELINE).plan
        assert plan_fingerprint(pushed) != plan_fingerprint(lifted)


class TestColumnNarrowing:
    """Projection pushdown: predicate-only columns never leave the scan."""

    def test_q6_scan_ships_only_aggregate_inputs(self, tpch_instance):
        catalog = Catalog.from_relations(tpch_instance.relation_list())
        plan = compile_query(tpch.query("Q6"), catalog).plan
        (scan,) = plan.scans()
        assert set(scan.columns) == {"l_extendedprice", "l_discount"}

    def test_q3_customer_scan_ships_only_join_key(self, tpch_instance):
        catalog = Catalog.from_relations(tpch_instance.relation_list())
        plan = compile_query(tpch.query("Q3"), catalog).plan
        customer = [s for s in plan.scans() if s.schema.name == "customer"][0]
        assert set(customer.columns) == {"c_custkey"}
        # The filter still runs — as a pushed residual at the data nodes.
        assert customer.residual is not None

    def test_baseline_ships_full_schema(self, tpch_instance):
        catalog = Catalog.from_relations(tpch_instance.relation_list())
        plan = compile_query(tpch.query("Q6"), catalog, options=BASELINE).plan
        (scan,) = plan.scans()
        assert scan.columns == scan.schema.attributes
        assert scan.sargable is None and scan.residual is None


class TestTrafficReduction:
    """The acceptance numbers: ≥40% scan traffic cut on selective queries."""

    @pytest.fixture(scope="class")
    def sf5_cluster(self):
        instance = tpch.generate(5.0, seed=0)
        cluster = Cluster(8, profile=LAN_GIGABIT)
        cluster.publish_relations(instance.relation_list())
        return cluster, instance

    @pytest.mark.parametrize("query_name", ("Q3", "Q5", "Q10"))
    def test_selective_join_queries_cut_traffic_40_percent(self, sf5_cluster, query_name):
        cluster, instance = sf5_cluster
        pushed = cluster.query(tpch.query(query_name), options=NO_CACHE)
        baseline = cluster.query(
            tpch.query(query_name), options=NO_CACHE, planner_options=BASELINE
        )
        assert normalise(pushed.rows, float_digits=2) == normalise(
            baseline.rows, float_digits=2
        )
        reduction = 1.0 - pushed.statistics.bytes_total / baseline.statistics.bytes_total
        assert reduction >= 0.40, (
            f"{query_name}: only {reduction:.1%} traffic reduction "
            f"({pushed.statistics.bytes_total:,d} vs "
            f"{baseline.statistics.bytes_total:,d} bytes)"
        )
        # The exchange-row share must shrink too, not just dissemination.
        assert pushed.statistics.data_bytes < baseline.statistics.data_bytes

    def test_statistics_expose_traffic_breakdown(self, sf5_cluster):
        cluster, _instance = sf5_cluster
        stats = cluster.query(tpch.query("Q3"), options=NO_CACHE).statistics
        assert stats.messages_total > 0
        assert stats.bytes_by_kind.get("query.start", 0) > 0
        assert stats.data_bytes > 0
        assert sum(stats.bytes_by_kind.values()) == stats.bytes_total


NULLABLE = Schema("nully", ["nk", "nb", "nc", "nd"], key=["nk"])


def nullable_relation() -> RelationData:
    data = RelationData(NULLABLE)
    numerics = [None, 1, 2, 3, 5.0, -0.0]
    for i in range(120):
        data.add(i, numerics[i % len(numerics)], None if i % 3 == 0 else i * 2,
                 None if i % 5 == 0 else f"s{i % 7}")
    return data


class TestNullSemantics:
    """NULL comparisons are false, NULL arithmetic propagates — pushed or not."""

    PREDICATES = [
        col("nb").gt(1),
        col("nb").eq(None),  # NULL literal: never matches
        InList(col("nc"), (None, 4, 8)),  # IN list containing NULL
        or_(col("nc").le(10), col("nd").eq("s1")),
        and_(not_(col("nd").eq("s2")), (col("nc") + col("nb")).gt(3)),
        not_(or_(col("nb").lt(2), col("nc").ge(100))),
    ]

    @pytest.fixture(scope="class")
    def null_cluster(self):
        data = nullable_relation()
        cluster = Cluster(5)
        cluster.publish_relations([data])
        return cluster, {"nully": data}

    @pytest.mark.parametrize("index", range(len(PREDICATES)))
    def test_null_heavy_predicate(self, null_cluster, index):
        cluster, relations = null_cluster
        predicate = self.PREDICATES[index]
        query = LogicalQuery(
            LogicalProject(
                LogicalSelect(LogicalScan(NULLABLE), predicate),
                [("nk", col("nk")), ("nc", col("nc"))],
            ),
            name=f"null{index}",
        )
        expected = normalise(evaluate_query(query, relations))
        pushed = cluster.query(query, options=NO_CACHE)
        baseline = cluster.query(query, options=NO_CACHE, planner_options=BASELINE)
        assert normalise(pushed.rows) == expected
        assert normalise(baseline.rows) == expected

    def test_null_aggregate_inputs(self, null_cluster):
        cluster, relations = null_cluster
        query = LogicalQuery(
            LogicalAggregate(
                LogicalSelect(LogicalScan(NULLABLE), col("nb").ge(0)),
                group_by=["nd"],
                aggregates=[
                    AggregateSpec("total", Sum(), col("nc")),
                    AggregateSpec("n", Count(), col("nc")),
                ],
            ),
            name="null_agg",
        )
        # The group key column contains NULLs alongside strings; normalise's
        # tuple sort cannot order those, so compare canonical reprs instead.
        expected = sorted(repr(tuple(r)) for r in evaluate_query(query, relations))
        got = sorted(repr(tuple(r)) for r in cluster.query(query, options=NO_CACHE).rows)
        assert got == expected


class TestDuplicateAttributes:
    """Hand-built plans with repeated output columns keep first-wins lookup."""

    def test_scan_with_duplicated_column(self):
        data = RelationData(Schema("dup", ["k", "v"], key=["k"]))
        for i in range(40):
            data.add(i, i * 3)
        cluster = Cluster(4)
        cluster.publish_relations([data])
        builder = PlanBuilder()
        scan = builder.scan(data.schema, columns=("v", "k", "v"))
        plan = PhysicalPlan(root=builder.ship(scan), name="dup_cols")
        result = cluster.query(plan)
        assert result.attributes == ("v", "k", "v")
        assert sorted(result.rows) == sorted((i * 3, i, i * 3) for i in range(40))

    def test_join_output_with_shared_column_names(self):
        left = RelationData(Schema("dl", ["lk", "w"], key=["lk"]))
        right = RelationData(Schema("dr", ["rk", "lk2", "w2"], key=["rk"]))
        for i in range(30):
            left.add(i, i % 5)
            right.add(i, i, (i % 5) * 10)
        cluster = Cluster(4)
        cluster.publish_relations([left, right])
        query = LogicalQuery(
            LogicalProject(
                LogicalJoin(LogicalScan(left.schema), LogicalScan(right.schema),
                            [("lk", "lk2")]),
                [("lk", col("lk")), ("w", col("w")), ("w2", col("w2"))],
            ),
            name="dup_join",
        )
        expected = normalise(evaluate_query(query, {"dl": left, "dr": right}))
        assert normalise(cluster.query(query, options=NO_CACHE).rows) == expected


class TestPagePruning:
    """Pruning must be invisible in the rows and visible in the traffic."""

    @pytest.fixture(scope="class")
    def orders_cluster(self):
        instance = tpch.generate(1.0, seed=3)
        cluster = Cluster(6, profile=LAN_GIGABIT)
        cluster.publish_relations(instance.relation_list())
        return cluster, instance

    def point_query(self, key: int) -> LogicalQuery:
        return parse_query(
            f"SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey = {key}",
            tpch.SCHEMAS,
        )

    def test_point_query_rows_match_without_pruning(self, orders_cluster):
        cluster, instance = orders_cluster
        for key in (0, 7, 99, 10**9):  # last one matches nothing
            query = self.point_query(key)
            expected = normalise(evaluate_query(query, instance.relations))
            pruned = cluster.query(self.point_query(key), options=NO_CACHE)
            unpruned = cluster.query(self.point_query(key), options=NO_CACHE,
                                     planner_options=NO_PRUNE)
            assert normalise(pruned.rows) == expected
            assert normalise(unpruned.rows) == expected
            assert pruned.statistics.scan_pages_pruned > 0
            assert unpruned.statistics.scan_pages_pruned == 0

    def test_in_list_and_or_predicates_prune(self, orders_cluster):
        cluster, instance = orders_cluster
        sql = ("SELECT o_orderkey, o_custkey FROM orders "
               "WHERE o_orderkey IN (1, 5, 250, 600)")
        query = parse_query(sql, tpch.SCHEMAS)
        expected = normalise(evaluate_query(query, instance.relations))
        result = cluster.query(parse_query(sql, tpch.SCHEMAS), options=NO_CACHE)
        assert normalise(result.rows) == expected
        assert result.statistics.scan_pages_pruned > 0

    def test_contradictory_equalities_prune_everything(self, orders_cluster):
        cluster, _instance = orders_cluster
        query = LogicalQuery(
            LogicalSelect(
                LogicalScan(tpch.ORDERS),
                and_(col("o_orderkey").eq(1), col("o_orderkey").eq(2)),
            ),
            name="contradiction",
        )
        result = cluster.query(query, options=NO_CACHE)
        assert result.rows == []
        stats = result.statistics
        assert stats.scan_pages_pruned == stats.scan_pages_total > 0

    def test_never_requests_unmatchable_page(self, orders_cluster, monkeypatch):
        """Every page a scan touches can actually contain a matching key."""
        cluster, _instance = orders_cluster
        touched = []
        original = QueryService._process_scan_page

        def recording(self, context, spec, ref, restrict_ranges, done):
            touched.append((spec.scan_op_id, ref))
            return original(self, context, spec, ref, restrict_ranges, done)

        monkeypatch.setattr(QueryService, "_process_scan_page", recording)
        query = self.point_query(13)
        catalog = cluster.catalog
        compiled = compile_query(query, catalog)
        (scan,) = compiled.plan.scans()
        # The int literal expands to its equal-comparing variants (13, 13.0);
        # a stored key of either type would satisfy the predicate.
        assert scan.prune_hashes is not None and len(scan.prune_hashes) == 2
        cluster.query(compiled.plan, options=NO_CACHE)
        assert touched, "the scan processed no pages at all"
        for _op, ref in touched:
            assert any(ref.hash_range.contains(h) for h in scan.prune_hashes), (
                f"scan requested page {ref.page_id} whose range cannot hold "
                f"the predicate's key"
            )

    def test_unhashable_literals_disable_pruning_without_crashing(self):
        """List literals are legal Values but cannot enter a candidate set;
        the analysis must bail out to no-pruning, not raise at plan time."""
        assert candidate_partition_hashes(col("k").eq([1, 2]), ("k",)) is None
        assert candidate_partition_hashes(
            InList(col("k"), ([1, 2], [3])), ("k",)
        ) is None

    def test_unknown_relation_with_predicate_fails_the_future(self):
        """The new predicate/columns path must fail through the future like
        every other retrieval error, not raise out of submit_retrieve."""
        cluster = Cluster(3)
        data = RelationData(Schema("known", ["k", "v"], key=["k"]))
        data.add(1, 2)
        cluster.publish_relations([data])
        future = cluster.session().submit_retrieve(
            "no_such_relation", predicate=col("v").gt(0)
        )
        cluster.run()
        with pytest.raises(Exception):
            future.result()

    def test_range_predicates_disable_pruning_soundly(self):
        """Range conjuncts cannot bound a hash: the analysis must bail out."""
        assert candidate_partition_hashes(col("k").lt(10), ("k",)) is None
        assert candidate_partition_hashes(col("k").ge(10), ("k",)) is None
        assert candidate_partition_hashes(
            or_(col("k").eq(1), col("k").lt(5)), ("k",)
        ) is None
        assert candidate_partition_hashes(not_(col("k").eq(1)), ("k",)) is None
        # Equality buried under OR of equalities is fine: candidates expand
        # to every equal-comparing variant (1 → {1, 1.0, True}, 2 → {2, 2.0}).
        hashes = candidate_partition_hashes(
            or_(col("k").eq(1), col("k").eq(2)), ("k",)
        )
        assert hashes is not None and len(hashes) == 5

    def test_cross_type_equality_never_prunes_a_match(self):
        """1 == 1.0 == True hash to different ring positions: a predicate
        literal of one type must keep the pages of every equal-comparing
        stored key, or pruning would silently drop matching rows."""
        data = RelationData(Schema("xt", ["xk", "xv"], key=["xk"]))
        stored_keys = [1.0, 2, 3.0, 0.0, 5, -0.0, 7.5]
        for i, key in enumerate(stored_keys):
            data.add(key, i)
        cluster = Cluster(4, page_capacity=1)  # one page per tuple: max pruning
        cluster.publish_relations([data])
        for literal, matches in ((1, {1.0}), (2.0, {2}), (0, {0.0, -0.0}),
                                 (5, {5}), (7.5, {7.5})):
            query = LogicalQuery(
                LogicalSelect(LogicalScan(data.schema), col("xk").eq(literal)),
                name=f"xt{literal!r}",
            )
            result = cluster.query(query, options=NO_CACHE)
            got_keys = {row[0] for row in result.rows}
            assert got_keys == matches, (
                f"literal {literal!r}: got keys {got_keys}, expected {matches}"
            )

    def test_pruning_property_sweep(self, orders_cluster):
        """Randomised key predicates: pruned == unpruned, always."""
        import random

        cluster, instance = orders_cluster
        rng = random.Random(42)
        num_orders = len(instance.relations["orders"])
        for _ in range(6):
            keys = sorted(rng.sample(range(num_orders), rng.randint(1, 5)))
            in_list = ", ".join(str(k) for k in keys)
            sql = f"SELECT o_orderkey, o_orderdate FROM orders WHERE o_orderkey IN ({in_list})"
            pruned = cluster.query(parse_query(sql, tpch.SCHEMAS), options=NO_CACHE)
            unpruned = cluster.query(parse_query(sql, tpch.SCHEMAS), options=NO_CACHE,
                                     planner_options=NO_PRUNE)
            assert normalise(pruned.rows) == normalise(unpruned.rows)
            assert len(pruned.rows) == len(keys)


#: Chaos sweep size; the nightly job can scale it up like CHAOS_SEEDS does.
PUSHDOWN_CHAOS_SEEDS = int(os.environ.get("PUSHDOWN_CHAOS_SEEDS", "24"))


def chaos_relations(seed: int):
    import random

    rng = random.Random(seed)
    r = RelationData(Schema("CR", ["x", "g", "v"], key=["x"]))
    s = RelationData(Schema("CS", ["u", "gg", "z"], key=["u"]))
    groups = rng.randint(20, 60)
    for i in range(rng.randint(250, 400)):
        r.add(f"k{i}", f"g{i % groups}", i)
    for j in range(rng.randint(60, 120)):
        s.add(f"u{j}", f"g{j % groups}", j * 3)
    return r, s


class TestChaosSweep:
    """Crash (and restart) a node mid-scan: pushed results stay row-identical.

    Each seed derives the victim, the crash time, the recovery mode and
    whether the victim restarts mid-query.  The query pushes both a residual
    predicate and a narrowed projection into its scans, so recovery rescans
    exercise the pushdown path end to end.  Every seed runs with columnar
    encoding on and off: recovery must be row-identical on both wire formats.
    """

    @pytest.mark.parametrize(
        "encoding", [True, False], ids=["encoded", "unencoded"]
    )
    @pytest.mark.parametrize("seed", range(PUSHDOWN_CHAOS_SEEDS))
    def test_pushdown_correct_under_crash_restart(self, seed, encoding):
        import random

        rng = random.Random(1000 + seed)
        r, s = chaos_relations(seed)
        query = LogicalQuery(
            LogicalAggregate(
                LogicalSelect(
                    LogicalJoin(LogicalScan(r.schema), LogicalScan(s.schema),
                                [("g", "gg")]),
                    col("v").ge(5),
                ),
                group_by=["x"],
                aggregates=[AggregateSpec("total", Sum(), col("z"))],
            ),
            name=f"chaos{seed}",
        )
        cluster = Cluster(5)
        cluster.publish_relations([r, s])
        cluster.enable_query_processing()
        victim = cluster.addresses[rng.randrange(1, 5)]
        offset = rng.uniform(0.0003, 0.004)
        mode = RECOVERY_INCREMENTAL if seed % 2 == 0 else RECOVERY_RESTART
        cluster.fail_node(victim, at_time=cluster.now + offset)
        restart = seed % 3 == 0
        if restart:
            # Crash-*restart* mid-query: the restarted incarnation rejoins
            # while the query is still recovering.
            cluster.network.schedule(offset + rng.uniform(0.001, 0.003),
                                     lambda: cluster.restart_node(victim))
        result = cluster.query(
            query,
            options=QueryOptions(recovery_mode=mode, use_result_cache=False),
            planner_options=PlannerOptions(enable_encoding=encoding),
        )
        expected = evaluate_query(query, {"CR": r, "CS": s})
        assert normalise(result.rows) == normalise(expected), (
            f"seed {seed}: pushdown result diverged after crash"
            f"{'+restart' if restart else ''} of {victim} at +{offset:.4f}s "
            f"({mode})"
        )
