"""Compiled (positional and columnar) evaluators vs. the interpreted path.

The vectorized operators evaluate expressions through
``compile_expression`` (closures over value tuples) and ``compile_columnar``
(evaluators over column lists).  Both must agree with ``Expression.evaluate``
on every value — including the NULL semantics (comparisons false, arithmetic
propagates) — because the figure benchmarks byte-compare the engine's
output against the original row-at-a-time implementation.
"""

import random

import pytest

from repro.common.types import Row
from repro.query.expressions import (
    BooleanOp,
    FunctionCall,
    InList,
    and_,
    col,
    compile_columnar,
    compile_expression,
    concat,
    lit,
    not_,
    or_,
)
from repro.common.errors import ExpressionError

ATTRIBUTES = ("a", "b", "s", "t", "n")


def random_rows(count, seed):
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        rows.append((
            rng.choice([None, rng.randrange(-50, 50)]),
            rng.uniform(-10.0, 10.0),
            rng.choice(["x", "y", "zz", ""]),
            rng.choice([None, "left", "right"]),
            None,
        ))
    return rows


EXPRESSIONS = [
    col("a"),
    lit(42),
    lit(None),
    col("a").lt(lit(10)),
    col("a").ge(col("a")),
    col("b") * (lit(1.0) - col("b")),
    col("a") + col("n"),
    and_(col("a").lt(lit(25)), col("b").gt(lit(0.0))),
    or_(col("s").eq(lit("x")), col("t").eq(lit("left"))),
    not_(col("s").eq(lit("y"))),
    BooleanOp("and", (col("a").lt(lit(0)),)),
    BooleanOp("or", (col("s").eq(lit("zz")),)),
    InList(col("s"), ("x", "zz")),
    concat(col("s"), lit("-"), col("t")),
    FunctionCall("upper", (col("s"),)),
    FunctionCall("round", (col("b"), lit(2))),
]


@pytest.mark.parametrize("expression", EXPRESSIONS, ids=[repr(e)[:48] for e in EXPRESSIONS])
def test_compiled_paths_match_interpreted(expression):
    rows = random_rows(300, seed=7)
    interpreted = [expression.evaluate(Row(ATTRIBUTES, values)) for values in rows]

    positional = compile_expression(expression, ATTRIBUTES)
    assert [positional(values) for values in rows] == interpreted

    columnar = compile_columnar(expression, ATTRIBUTES)
    columns = list(zip(*rows))
    # Column references return the input column zero-copy (possibly a
    # tuple); compare as a sequence.
    assert list(columnar(columns, len(rows))) == interpreted


def test_missing_attribute_raises_at_call_time():
    positional = compile_expression(col("nope"), ATTRIBUTES)
    with pytest.raises(ExpressionError):
        positional((1, 2.0, "x", "left", None))
    columnar = compile_columnar(col("nope"), ATTRIBUTES)
    with pytest.raises(ExpressionError):
        columnar(list(zip(*random_rows(3, 0))), 3)


def test_columnar_and_preserves_short_circuit():
    """A conjunct guarding a raising expression still guards it columnar-wise:
    the guarded division is only evaluated on rows the first conjunct accepted
    (all()'s row-wise short-circuit, preserved batch-wise)."""
    guarded = and_(col("a").ne(lit(0)), (lit(10) / col("a")).gt(lit(1)))
    attributes = ("a",)
    rows = [(0,), (5,), (0,), (2,), (100,)]
    expected = [guarded.evaluate(Row(attributes, values)) for values in rows]
    columnar = compile_columnar(guarded, attributes)
    assert list(columnar(list(zip(*rows)), len(rows))) == expected  # no ZeroDivisionError


def test_columnar_or_preserves_short_circuit():
    guarded = or_(col("a").eq(lit(0)), (lit(10) / col("a")).gt(lit(1)))
    attributes = ("a",)
    rows = [(0,), (5,), (0,), (2,)]
    expected = [guarded.evaluate(Row(attributes, values)) for values in rows]
    columnar = compile_columnar(guarded, attributes)
    assert list(columnar(list(zip(*rows)), len(rows))) == expected


def test_zero_argument_function_and_empty_boolean_ops():
    attributes = ("a",)
    rows = [(1,), (2,), (3,)]
    columns = [list(column) for column in zip(*rows)]
    for expression, expected_one in (
        (concat(), ""),                         # concat() -> "" per row
        (BooleanOp("and", ()), True),           # all(()) is True
        (BooleanOp("or", ()), False),           # any(()) is False
    ):
        expected = [expression.evaluate(Row(attributes, values)) for values in rows]
        assert expected == [expected_one] * len(rows)
        columnar = compile_columnar(expression, attributes)
        assert list(columnar(columns, len(rows))) == expected
        positional = compile_expression(expression, attributes)
        assert [positional(values) for values in rows] == expected


def test_duplicate_attributes_resolve_to_first_occurrence():
    attributes = ("k", "v", "k")
    values = (1, 2, 3)
    assert compile_expression(col("k"), attributes)(values) == 1
    columns = [[1], [2], [3]]
    assert compile_columnar(col("k"), attributes)(columns, 1) == [1]
    assert Row(attributes, values)["k"] == 1  # Row agrees (tuple.index rule)
