"""Tests for failure handling: full restart and incremental recovery (Section V-D).

The paper's correctness requirement is that a query whose participant fails
mid-execution still returns the *exact* (correct, complete, duplicate-free)
answer set.  Each test kills one or more nodes at various points during
execution and compares against the oracle evaluator.
"""

import pytest

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.optimizer.planner import PlannerOptions
from repro.query.expressions import AggregateSpec, Count, Sum, col
from repro.query.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
)
from repro.query.reference import evaluate_query, normalise
from repro.query.service import (
    RECOVERY_INCREMENTAL,
    RECOVERY_RESTART,
    QueryOptions,
)


def build_relations(num_r=350, num_s=90, groups=45):
    r = RelationData(Schema("R", ["x", "y", "v"], key=["x"]))
    s = RelationData(Schema("S", ["u", "yy", "z"], key=["u"]))
    for i in range(num_r):
        r.add(f"k{i}", f"g{i % groups}", i)
    for j in range(num_s):
        s.add(f"u{j}", f"g{j % groups}", j * 7)
    return r, s


def join_aggregate_query(r, s):
    join = LogicalJoin(LogicalScan(r.schema), LogicalScan(s.schema), [("y", "yy")])
    return LogicalQuery(
        LogicalAggregate(join, ["x"], [AggregateSpec("total", Sum(), col("z"))]),
        name="join_agg",
    )


def run_with_failure(query, relations, fail_offsets, mode, nodes=6,
                     planner_options=None, detection_delay=None):
    """Run ``query`` on a fresh cluster, failing one node per offset."""
    cluster = Cluster(nodes)
    if detection_delay is not None:
        cluster.network.failure_detection_delay = detection_delay
    cluster.publish_relations(list(relations.values()))
    cluster.enable_query_processing()
    victims = [cluster.addresses[2 + i] for i in range(len(fail_offsets))]
    for victim, offset in zip(victims, fail_offsets):
        cluster.fail_node(victim, at_time=cluster.now + offset)
    result = cluster.query(
        query,
        options=QueryOptions(recovery_mode=mode),
        planner_options=planner_options,
    )
    expected = evaluate_query(query, relations)
    assert normalise(result.rows) == normalise(expected)
    return result


class TestIncrementalRecovery:
    @pytest.mark.parametrize("offset", [0.0005, 0.001, 0.0015, 0.002, 0.003])
    def test_join_aggregate_correct_after_failure(self, offset):
        r, s = build_relations()
        query = join_aggregate_query(r, s)
        run_with_failure(query, {"R": r, "S": s}, [offset], RECOVERY_INCREMENTAL)

    @pytest.mark.parametrize("offset", [0.001, 0.002])
    def test_rehash_aggregate_strategy(self, offset):
        r, s = build_relations()
        query = join_aggregate_query(r, s)
        run_with_failure(
            query, {"R": r, "S": s}, [offset], RECOVERY_INCREMENTAL,
            planner_options=PlannerOptions(small_group_threshold=1),
        )

    def test_scan_only_query_with_failure(self):
        r, s = build_relations()
        query = LogicalQuery(LogicalScan(r.schema), name="copy")
        result = run_with_failure(query, {"R": r, "S": s}, [0.001], RECOVERY_INCREMENTAL)
        assert len(result.rows) == len(r.rows)

    def test_projection_query_with_failure(self):
        r, s = build_relations()
        query = LogicalQuery(
            LogicalProject(LogicalScan(r.schema), [("x", col("x")), ("v", col("v"))]),
            name="proj",
        )
        run_with_failure(query, {"R": r, "S": s}, [0.0012], RECOVERY_INCREMENTAL)

    def test_scalar_aggregate_with_failure(self):
        r, s = build_relations()
        query = LogicalQuery(
            LogicalAggregate(
                LogicalScan(r.schema),
                [],
                [AggregateSpec("total", Sum(), col("v")), AggregateSpec("n", Count(), col("v"))],
            ),
            name="scalar",
        )
        run_with_failure(query, {"R": r, "S": s}, [0.001], RECOVERY_INCREMENTAL)

    def test_statistics_report_recovery(self):
        r, s = build_relations()
        query = join_aggregate_query(r, s)
        result = run_with_failure(
            query, {"R": r, "S": s}, [0.0015], RECOVERY_INCREMENTAL,
            detection_delay=0.005,
        )
        if result.statistics.failures_handled:
            assert result.statistics.phases >= 2
            assert result.statistics.restarts == 0

    def test_two_failures(self):
        r, s = build_relations()
        query = join_aggregate_query(r, s)
        run_with_failure(
            query, {"R": r, "S": s}, [0.001, 0.0025], RECOVERY_INCREMENTAL,
            nodes=8, detection_delay=0.001,
        )

    def test_failure_before_query_start(self):
        r, s = build_relations(num_r=100, num_s=30)
        cluster = Cluster(6)
        cluster.publish_relations([r, s])
        cluster.enable_query_processing()
        cluster.fail_node(cluster.addresses[4])
        cluster.run()
        query = join_aggregate_query(r, s)
        result = cluster.query(query, options=QueryOptions(recovery_mode=RECOVERY_INCREMENTAL))
        expected = evaluate_query(query, {"R": r, "S": s})
        assert normalise(result.rows) == normalise(expected)
        assert result.statistics.participating_nodes == 5


class TestRestartRecovery:
    @pytest.mark.parametrize("offset", [0.001, 0.002])
    def test_restart_produces_correct_results(self, offset):
        r, s = build_relations()
        query = join_aggregate_query(r, s)
        result = run_with_failure(query, {"R": r, "S": s}, [offset], RECOVERY_RESTART)
        if result.statistics.failures_handled:
            assert result.statistics.restarts >= 1

    def test_restart_time_includes_both_attempts(self):
        r, s = build_relations()
        query = join_aggregate_query(r, s)
        # Detect quickly so the failure is handled mid-query deterministically.
        result = run_with_failure(
            query, {"R": r, "S": s}, [0.0015], RECOVERY_RESTART, detection_delay=0.0005
        )
        baseline = run_with_failure(query, {"R": r, "S": s}, [10_000.0], RECOVERY_RESTART)
        if result.statistics.restarts:
            assert result.statistics.execution_time > baseline.statistics.execution_time


class TestRecoveryComparison:
    def test_incremental_not_slower_than_restart(self):
        """Figure 21's qualitative claim: incremental recovery beats restart."""
        r, s = build_relations(num_r=500, num_s=120)
        query = join_aggregate_query(r, s)
        relations = {"R": r, "S": s}
        times = {}
        for mode in (RECOVERY_INCREMENTAL, RECOVERY_RESTART):
            result = run_with_failure(
                query, relations, [0.0015], mode, detection_delay=0.0005,
                planner_options=PlannerOptions(small_group_threshold=1),
            )
            times[mode] = result.statistics.execution_time
        assert times[RECOVERY_INCREMENTAL] <= times[RECOVERY_RESTART] * 1.1

    def test_provenance_overhead_is_small(self):
        """Section VI-E: recovery support costs a few percent of run time."""
        r, s = build_relations(num_r=400, num_s=100)
        query = join_aggregate_query(r, s)
        cluster = Cluster(6)
        cluster.publish_relations([r, s])
        with_prov = cluster.query(query, options=QueryOptions(provenance_enabled=True))
        without_prov = cluster.query(query, options=QueryOptions(provenance_enabled=False))
        assert with_prov.statistics.bytes_total >= without_prov.statistics.bytes_total
        # The overhead must stay modest.  The paper reports ≤2% extra traffic on
        # TPC-H (reproduced by benchmarks/test_overhead_recovery_support.py);
        # the rows in this unit test are only ~20 bytes wide, so the fixed
        # per-row tag is a much larger fraction here than on realistic tuples.
        assert with_prov.statistics.bytes_total <= without_prov.statistics.bytes_total * 1.35
