"""End-to-end tests for the distributed query engine.

Every test compares the distributed engine's answer against the single-process
reference evaluator on the same data (the oracle), so these tests check the
complete stack: optimizer → plan dissemination → leaf scans over the versioned
storage layer → exchanges → collection at the initiator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.optimizer.planner import PlannerOptions
from repro.query.expressions import AggregateSpec, Avg, Count, Max, Min, Sum, col, concat, lit
from repro.query.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)
from repro.query.reference import evaluate_query, normalise
from repro.query.service import QueryOptions


def build_data(num_r=300, num_s=80, groups=40):
    r = RelationData(Schema("R", ["x", "y", "v"], key=["x"]))
    s = RelationData(Schema("S", ["u", "yy", "z"], key=["u"]))
    for i in range(num_r):
        r.add(f"k{i}", f"g{i % groups}", i)
    for j in range(num_s):
        s.add(f"u{j}", f"g{j % groups}", j * 10)
    return r, s


@pytest.fixture(scope="module")
def loaded_cluster():
    r, s = build_data()
    cluster = Cluster(5)
    cluster.publish_relations([r, s])
    cluster.enable_query_processing()
    return cluster, {"R": r, "S": s}


def run_and_compare(cluster, relations, query, **kwargs):
    result = cluster.query(query, **kwargs)
    expected = evaluate_query(query, relations)
    assert normalise(result.rows) == normalise(expected)
    return result


class TestBasicQueries:
    def test_full_scan(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(LogicalScan(relations["R"].schema), name="copy")
        result = run_and_compare(cluster, relations, query)
        assert result.statistics.execution_time > 0
        assert result.statistics.participating_nodes == 5

    def test_selection_on_key(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalSelect(LogicalScan(relations["R"].schema), col("x").eq("k10")),
            name="point",
        )
        result = run_and_compare(cluster, relations, query)
        assert len(result.rows) == 1

    def test_selection_on_non_key(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalSelect(LogicalScan(relations["R"].schema), col("v").lt(25)),
            name="range",
        )
        result = run_and_compare(cluster, relations, query)
        assert len(result.rows) == 25

    def test_projection(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalProject(LogicalScan(relations["R"].schema), [("x", col("x")), ("v", col("v"))]),
            name="project",
        )
        run_and_compare(cluster, relations, query)

    def test_covering_scan_key_only(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalProject(LogicalScan(relations["R"].schema), [("x", col("x"))]),
            name="covering",
        )
        result = run_and_compare(cluster, relations, query)
        assert len(result.rows) == 300

    def test_compute_function(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalProject(
                LogicalScan(relations["R"].schema),
                [("combined", concat(col("x"), lit("-"), col("y"))), ("v", col("v") * lit(2))],
            ),
            name="compute",
        )
        run_and_compare(cluster, relations, query)

    def test_order_by_and_limit(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalProject(LogicalScan(relations["R"].schema), [("x", col("x")), ("v", col("v"))]),
            order_by=[("v", False)],
            limit=7,
            name="topk",
        )
        result = cluster.query(query)
        expected = evaluate_query(query, relations)
        assert result.rows == expected  # ordered comparison

    def test_empty_result(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalSelect(LogicalScan(relations["R"].schema), col("v").gt(10_000)),
            name="empty",
        )
        result = run_and_compare(cluster, relations, query)
        assert result.rows == []


class TestJoins:
    def test_two_way_join(self, loaded_cluster):
        cluster, relations = loaded_cluster
        join = LogicalJoin(
            LogicalScan(relations["R"].schema), LogicalScan(relations["S"].schema), [("y", "yy")]
        )
        query = LogicalQuery(join, name="join")
        run_and_compare(cluster, relations, query)

    def test_join_with_selection(self, loaded_cluster):
        cluster, relations = loaded_cluster
        join = LogicalJoin(
            LogicalScan(relations["R"].schema), LogicalScan(relations["S"].schema), [("y", "yy")]
        )
        query = LogicalQuery(LogicalSelect(join, col("z").lt(200)), name="join_filter")
        run_and_compare(cluster, relations, query)

    def test_colocated_join_on_partition_key(self, loaded_cluster):
        cluster, relations = loaded_cluster
        # Join R.x (partition key) with a relation keyed by the same values.
        t = RelationData(Schema("T", ["tx", "w"], key=["tx"]))
        for i in range(0, 300, 3):
            t.add(f"k{i}", i * 100)
        cluster.publish(t)
        relations = dict(relations, T=t)
        join = LogicalJoin(
            LogicalScan(relations["R"].schema), LogicalScan(t.schema), [("x", "tx")]
        )
        query = LogicalQuery(join, name="colocated")
        run_and_compare(cluster, relations, query)

    def test_three_way_join(self, loaded_cluster):
        cluster, relations = loaded_cluster
        t = RelationData(Schema("T3", ["t_u", "note"], key=["t_u"]))
        for j in range(0, 80, 2):
            t.add(f"u{j}", f"note{j}")
        cluster.publish(t)
        relations = dict(relations, T3=t)
        join_rs = LogicalJoin(
            LogicalScan(relations["R"].schema), LogicalScan(relations["S"].schema), [("y", "yy")]
        )
        join_all = LogicalJoin(join_rs, LogicalScan(t.schema), [("u", "t_u")])
        query = LogicalQuery(join_all, name="threeway")
        run_and_compare(cluster, relations, query)


class TestAggregation:
    def test_scalar_aggregate(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalAggregate(
                LogicalScan(relations["R"].schema),
                [],
                [
                    AggregateSpec("total", Sum(), col("v")),
                    AggregateSpec("cnt", Count(), col("v")),
                    AggregateSpec("lo", Min(), col("v")),
                    AggregateSpec("hi", Max(), col("v")),
                    AggregateSpec("mean", Avg(), col("v")),
                ],
            ),
            name="scalar_agg",
        )
        result = run_and_compare(cluster, relations, query)
        assert len(result.rows) == 1

    def test_group_by_small_groups(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalAggregate(
                LogicalScan(relations["R"].schema),
                ["y"],
                [AggregateSpec("total", Sum(), col("v")), AggregateSpec("n", Count(), col("v"))],
            ),
            name="groupby",
        )
        run_and_compare(cluster, relations, query)

    def test_group_by_rehash_strategy(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalAggregate(
                LogicalScan(relations["R"].schema),
                ["y"],
                [AggregateSpec("total", Sum(), col("v"))],
            ),
            name="groupby_rehash",
        )
        # Force the rehash-based strategy regardless of the group estimate.
        run_and_compare(
            cluster, relations, query,
            planner_options=PlannerOptions(small_group_threshold=1),
        )

    def test_join_then_aggregate(self, loaded_cluster):
        cluster, relations = loaded_cluster
        join = LogicalJoin(
            LogicalScan(relations["R"].schema), LogicalScan(relations["S"].schema), [("y", "yy")]
        )
        query = LogicalQuery(
            LogicalAggregate(join, ["x"], [AggregateSpec("mn", Min(), col("z"))]),
            name="paper_example_5_1",
        )
        run_and_compare(cluster, relations, query)

    def test_aggregate_over_expression(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalAggregate(
                LogicalScan(relations["S"].schema),
                [],
                [AggregateSpec("weighted", Sum(), col("z") * lit(2) + lit(1))],
            ),
            name="expr_agg",
        )
        run_and_compare(cluster, relations, query)


class TestSQLEndToEnd:
    def test_sql_select(self, loaded_cluster):
        cluster, relations = loaded_cluster
        result = cluster.query("SELECT x, v FROM R WHERE v < 10")
        assert len(result.rows) == 10

    def test_sql_join_group_by(self, loaded_cluster):
        cluster, relations = loaded_cluster
        result = cluster.query(
            "SELECT x, MIN(z) AS mn FROM R, S WHERE y = yy GROUP BY x"
        )
        join = LogicalJoin(
            LogicalScan(relations["R"].schema), LogicalScan(relations["S"].schema), [("y", "yy")]
        )
        expected = evaluate_query(
            LogicalQuery(LogicalAggregate(join, ["x"], [AggregateSpec("mn", Min(), col("z"))])),
            relations,
        )
        assert normalise(result.rows) == normalise(expected)


class TestStatisticsAndVersions:
    def test_traffic_and_time_recorded(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(LogicalScan(relations["R"].schema), name="stats")
        result = cluster.query(query)
        assert result.statistics.bytes_total > 0
        assert result.statistics.execution_time > 0
        assert sum(result.statistics.bytes_per_node.values()) >= result.statistics.bytes_total

    def test_query_at_old_epoch(self):
        r, s = build_data(num_r=50, num_s=10)
        cluster = Cluster(4)
        epoch_1 = cluster.publish_relations([r])
        extra = RelationData(r.schema)
        extra.add("extra-key", "gX", 999)
        from repro.storage.client import UpdateBatch

        cluster.publish(UpdateBatch(r.schema, inserts=list(extra.rows)), epoch=epoch_1 + 1)
        old = cluster.query(LogicalQuery(LogicalScan(r.schema)), epoch=epoch_1)
        new = cluster.query(LogicalQuery(LogicalScan(r.schema)), epoch=epoch_1 + 1)
        assert len(old.rows) == 50
        assert len(new.rows) == 51

    def test_provenance_disabled_still_correct(self, loaded_cluster):
        cluster, relations = loaded_cluster
        query = LogicalQuery(
            LogicalJoin(
                LogicalScan(relations["R"].schema),
                LogicalScan(relations["S"].schema),
                [("y", "yy")],
            ),
            name="no_prov",
        )
        result = cluster.query(query, options=QueryOptions(provenance_enabled=False))
        expected = evaluate_query(query, relations)
        assert normalise(result.rows) == normalise(expected)

    def test_single_node_cluster_runs_queries(self):
        r, s = build_data(num_r=40, num_s=10)
        cluster = Cluster(1)
        cluster.publish_relations([r, s])
        query = LogicalQuery(
            LogicalJoin(LogicalScan(r.schema), LogicalScan(s.schema), [("y", "yy")]),
            name="single",
        )
        result = cluster.query(query)
        expected = evaluate_query(query, {"R": r, "S": s})
        assert normalise(result.rows) == normalise(expected)


class TestPropertyBased:
    @given(
        num_rows=st.integers(min_value=1, max_value=60),
        groups=st.integers(min_value=1, max_value=10),
        threshold=st.integers(min_value=0, max_value=100),
        nodes=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_group_by_sum_matches_oracle(self, num_rows, groups, threshold, nodes):
        r = RelationData(Schema("PR", ["k", "g", "val"], key=["k"]))
        for i in range(num_rows):
            r.add(f"k{i}", f"g{i % groups}", i * 3)
        cluster = Cluster(nodes)
        cluster.publish(r)
        query = LogicalQuery(
            LogicalAggregate(
                LogicalSelect(LogicalScan(r.schema), col("val").ge(threshold)),
                ["g"],
                [AggregateSpec("total", Sum(), col("val")), AggregateSpec("n", Count(), col("val"))],
            ),
            name="prop",
        )
        result = cluster.query(query)
        expected = evaluate_query(query, {"PR": r})
        assert normalise(result.rows) == normalise(expected)
