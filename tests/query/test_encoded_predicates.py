"""Decode-counter proofs for predicate evaluation over encoded batches.

The point of keeping batches encoded is that a pushed predicate can reject
rows — or whole batches — without materialising a single value.  These tests
instrument :data:`ENCODING_STATS` around :func:`encoded_match_positions` and
the cache-hit pushdown path and assert the counters directly: dictionary
equality misses, frame-of-reference range misses and run-length misses must
leave ``values_decoded`` untouched, and a surviving predicate must decode
*only* the surviving positions.  Cross-type variants (``1`` / ``1.0`` /
``True`` compare equal but decode distinctly) are covered explicitly because
they are the easiest way for a dictionary translation to go wrong.
"""

import pytest

from repro.common.serialization import (
    ENCODING_STATS,
    DictColumn,
    EncodedScanBatch,
    EncodedTupleBatch,
    ForColumn,
    RleColumn,
)
from repro.common.types import TupleId, VersionedTuple
from repro.query.expressions import Column, Comparison, InList, Literal, and_
from repro.query.pushdown import ScanPredicate, encoded_match_positions
from repro.storage.client import _RetrieveOperation


@pytest.fixture(autouse=True)
def reset_stats():
    before = ENCODING_STATS.snapshot()
    ENCODING_STATS.reset()
    yield
    # Restore the process-wide counters so unrelated tests observing deltas
    # (bench capture, observability) are unaffected by this module.
    ENCODING_STATS.reset()
    ENCODING_STATS.batches_encoded = before["batches_encoded"]
    ENCODING_STATS.encoded_bytes.update(before["encoded_bytes"])
    ENCODING_STATS.columns_decoded = before["columns_decoded"]
    ENCODING_STATS.values_decoded = before["values_decoded"]
    ENCODING_STATS.batches_decoded = before["batches_decoded"]
    ENCODING_STATS.batches_skipped = before["batches_skipped"]


def predicate(expression, attributes):
    return ScanPredicate(expression, attributes)


def equals(name, value):
    return Comparison("=", Column(name), Literal(value))


def build_batch(attributes, rows):
    batch = EncodedTupleBatch.build(attributes, rows)
    # The counters under test are the *decode* side.
    ENCODING_STATS.columns_decoded = 0
    ENCODING_STATS.values_decoded = 0
    return batch


class TestDictEqualitySkipping:
    def test_miss_decodes_nothing(self):
        rows = [(f"key-{i}", "A" if i % 2 else "B") for i in range(64)]
        batch = build_batch(("k", "flag"), rows)
        assert isinstance(batch.columns[1], DictColumn)
        positions, residual = encoded_match_positions(
            predicate(equals("flag", "Z"), ("k", "flag")), batch
        )
        assert positions == [] and residual == []
        assert ENCODING_STATS.values_decoded == 0
        assert ENCODING_STATS.columns_decoded == 0

    def test_hit_decodes_only_survivors(self):
        rows = [(i, "A" if i % 4 == 0 else "B") for i in range(64)]
        batch = build_batch(("k", "flag"), rows)
        positions, residual = encoded_match_positions(
            predicate(equals("flag", "A"), ("k", "flag")), batch
        )
        assert positions == [i for i in range(64) if i % 4 == 0]
        assert residual == []
        assert ENCODING_STATS.values_decoded == 0  # matching itself decodes nothing
        survivors = batch.decode_rows_at(positions)
        assert [row[1] for row in survivors] == ["A"] * len(positions)
        assert ENCODING_STATS.values_decoded == len(positions) * 2

    def test_in_list_translates_against_dictionary(self):
        rows = [(i, ("R", "G", "B")[i % 3]) for i in range(30)]
        batch = build_batch(("k", "colour"), rows)
        expression = InList(Column("colour"), ("G", "missing", None))
        positions, residual = encoded_match_positions(
            predicate(expression, ("k", "colour")), batch
        )
        assert positions == [i for i in range(30) if i % 3 == 1]
        assert residual == []
        assert ENCODING_STATS.values_decoded == 0


class TestRangeSkipping:
    def test_for_bounds_reject_whole_batch(self):
        rows = [(100 + i, 2.0 + (i % 7) / 4.0) for i in range(64)]
        batch = build_batch(("k", "rate"), rows)
        assert isinstance(batch.columns[0], ForColumn)
        for expression in (
            Comparison(">", Column("k"), Literal(10_000)),
            Comparison("<", Column("k"), Literal(100)),
            Comparison("<=", Column("k"), Literal(99)),
            Comparison(">=", Column("k"), Literal(164)),
            equals("k", 5),
        ):
            positions, residual = encoded_match_positions(
                predicate(expression, ("k", "rate")), batch
            )
            assert positions == [] and residual == []
        assert ENCODING_STATS.values_decoded == 0

    def test_rle_runs_reject_whole_batch(self):
        rows = [("pending",) for _ in range(40)] + [("shipped",) for _ in range(24)]
        batch = build_batch(("status",), rows)
        assert isinstance(batch.columns[0], RleColumn)
        positions, residual = encoded_match_positions(
            predicate(equals("status", "cancelled"), ("status",)), batch
        )
        assert positions == [] and residual == []
        assert ENCODING_STATS.values_decoded == 0

    def test_scaled_decimal_bounds(self):
        rows = [(i, 10.25 + (i % 50) * 0.25) for i in range(128)]
        batch = build_batch(("k", "price"), rows)
        price = batch.columns[1]
        assert isinstance(price, ForColumn) and price.scale == 2
        positions, _ = encoded_match_positions(
            predicate(Comparison(">", Column("price"), Literal(500.0)), ("k", "price")),
            batch,
        )
        assert positions == []
        assert ENCODING_STATS.values_decoded == 0

    def test_null_literal_comparison_rejects_without_decoding(self):
        rows = [(i,) for i in range(32)]
        batch = build_batch(("k",), rows)
        positions, residual = encoded_match_positions(
            predicate(equals("k", None), ("k",)), batch
        )
        assert positions == [] and residual == []
        assert ENCODING_STATS.values_decoded == 0


class TestCrossTypeVariants:
    """1 / 1.0 / True compare equal; skipping must honour ``==`` semantics."""

    ROWS = [(v,) for v in (1, 1.0, True, 2, 2.0, False, 1, 1.0)]

    def test_equality_matches_every_equal_variant(self):
        batch = build_batch(("v",), self.ROWS)
        assert isinstance(batch.columns[0], DictColumn)
        positions, residual = encoded_match_positions(
            predicate(equals("v", 1), ("v",)), batch
        )
        # Python == conflates the variants, so all three must survive.
        assert positions == [0, 1, 2, 6, 7]
        assert residual == []
        assert ENCODING_STATS.values_decoded == 0
        decoded = batch.decode_rows_at(positions)
        assert [repr(row[0]) for row in decoded] == ["1", "1.0", "True", "1", "1.0"]

    def test_miss_with_variants_present_skips_undecoded(self):
        batch = build_batch(("v",), self.ROWS)
        positions, residual = encoded_match_positions(
            predicate(equals("v", 3), ("v",)), batch
        )
        assert positions == [] and residual == []
        assert ENCODING_STATS.values_decoded == 0

    def test_boolean_literal_matches_numeric_variants(self):
        batch = build_batch(("v",), self.ROWS)
        positions, _ = encoded_match_positions(
            predicate(equals("v", True), ("v",)), batch
        )
        assert positions == [0, 1, 2, 6, 7]
        assert ENCODING_STATS.values_decoded == 0


class TestConjunctionsAndResiduals:
    def test_conjunction_intersects_before_decoding(self):
        rows = [(i, "A" if i < 8 else "B", 1.25 * i) for i in range(32)]
        batch = build_batch(("k", "flag", "price"), rows)
        expression = and_(
            equals("flag", "A"), Comparison(">=", Column("k"), Literal(4))
        )
        positions, residual = encoded_match_positions(
            predicate(expression, ("k", "flag", "price")), batch
        )
        assert positions == [4, 5, 6, 7]
        assert residual == []
        assert ENCODING_STATS.values_decoded == 0

    def test_multi_column_conjunct_becomes_residual(self):
        rows = [(i, i * 2) for i in range(16)]
        batch = build_batch(("a", "b"), rows)
        expression = Comparison("<", Column("a"), Column("b"))
        positions, residual = encoded_match_positions(
            predicate(expression, ("a", "b")), batch
        )
        assert positions is None  # nothing decidable on the encoded form
        assert residual == [expression]
        assert ENCODING_STATS.values_decoded == 0


def make_operation(key_predicate=None, pushed=None, projection=None):
    operation = object.__new__(_RetrieveOperation)
    operation.key_predicate = key_predicate
    operation.predicate = pushed
    operation.projection = projection
    return operation


class TestCacheHitPushdownPath:
    """The scan-cache fast path: skipped batches bump ``batches_skipped``."""

    @staticmethod
    def scan_batch(count=48):
        tuples = [
            VersionedTuple(
                "orders",
                TupleId((f"o{i}",), 1),
                (i, "URGENT" if i % 6 == 0 else "NORMAL", 100.25 + i),
            )
            for i in range(count)
        ]
        batch = EncodedScanBatch.from_tuples(tuples)
        ENCODING_STATS.columns_decoded = 0
        ENCODING_STATS.values_decoded = 0
        ENCODING_STATS.batches_skipped = 0
        return tuples, batch

    def test_provably_empty_batch_is_skipped_undecoded(self):
        _, batch = self.scan_batch()
        operation = make_operation(
            pushed=ScanPredicate(
                equals("priority", "LOW"), ("key", "priority", "total")
            )
        )
        assert operation._apply_pushdown(batch) == []
        assert ENCODING_STATS.batches_skipped == 1
        assert ENCODING_STATS.values_decoded == 0

    def test_surviving_positions_decode_exactly(self):
        tuples, batch = self.scan_batch()
        operation = make_operation(
            pushed=ScanPredicate(
                equals("priority", "URGENT"), ("key", "priority", "total")
            )
        )
        result = operation._apply_pushdown(batch)
        expected = [t for t in tuples if t.values[1] == "URGENT"]
        assert result == expected
        assert ENCODING_STATS.batches_skipped == 0
        # Three columns, decoded only at the surviving positions.
        assert ENCODING_STATS.values_decoded == 3 * len(expected)

    def test_unfiltered_batch_decodes_everything_once(self):
        tuples, batch = self.scan_batch()
        operation = make_operation()
        assert operation._apply_pushdown(batch) == tuples
        assert ENCODING_STATS.values_decoded == 3 * len(tuples)
