"""Tests for scalar expressions, predicates and aggregate functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ExpressionError
from repro.common.types import Row
from repro.query.expressions import (
    AGGREGATES,
    AggregateSpec,
    Avg,
    BooleanOp,
    Comparison,
    Count,
    FunctionCall,
    InList,
    Max,
    Min,
    Sum,
    and_,
    col,
    concat,
    key_predicate_function,
    lit,
    not_,
    or_,
    split_conjuncts,
    split_sargable,
)

ROW = Row(("a", "b", "s"), (10, 2.5, "text"))


class TestScalarExpressions:
    def test_column_and_literal(self):
        assert col("a").evaluate(ROW) == 10
        assert lit(7).evaluate(ROW) == 7

    def test_column_missing_attribute(self):
        with pytest.raises(ExpressionError):
            col("missing").evaluate(ROW)

    def test_arithmetic(self):
        assert (col("a") + lit(5)).evaluate(ROW) == 15
        assert (col("a") - lit(1)).evaluate(ROW) == 9
        assert (col("a") * col("b")).evaluate(ROW) == 25.0
        assert (col("a") / lit(4)).evaluate(ROW) == 2.5

    def test_arithmetic_null_propagates(self):
        row = Row(("a",), (None,))
        assert (col("a") + lit(1)).evaluate(row) is None

    def test_comparisons(self):
        assert col("a").eq(10).evaluate(ROW)
        assert col("a").ne(11).evaluate(ROW)
        assert col("a").lt(11).evaluate(ROW)
        assert col("a").le(10).evaluate(ROW)
        assert col("a").gt(9).evaluate(ROW)
        assert col("a").ge(10).evaluate(ROW)

    def test_comparison_with_null_is_false(self):
        row = Row(("a",), (None,))
        assert not col("a").eq(1).evaluate(row)

    def test_unknown_comparison_operator(self):
        with pytest.raises(ExpressionError):
            Comparison("~", col("a"), lit(1))

    def test_boolean_connectives(self):
        assert and_(col("a").gt(1), col("b").gt(1)).evaluate(ROW)
        assert not and_(col("a").gt(1), col("b").gt(100)).evaluate(ROW)
        assert or_(col("a").gt(100), col("b").gt(1)).evaluate(ROW)
        assert not_(col("a").gt(100)).evaluate(ROW)

    def test_empty_and_is_true(self):
        assert and_().evaluate(ROW) is True

    def test_not_requires_single_operand(self):
        with pytest.raises(ExpressionError):
            BooleanOp("not", (col("a"), col("b")))

    def test_in_list(self):
        assert InList(col("a"), [1, 10, 20]).evaluate(ROW)
        assert not InList(col("a"), [1, 2]).evaluate(ROW)

    def test_references(self):
        expr = and_(col("a").gt(1), col("b").lt(col("c")))
        assert expr.references() == {"a", "b", "c"}

    def test_functions(self):
        assert concat(col("s"), lit("!")).evaluate(ROW) == "text!"
        assert FunctionCall("upper", [col("s")]).evaluate(ROW) == "TEXT"
        assert FunctionCall("substr", [col("s"), lit(0), lit(2)]).evaluate(ROW) == "te"
        assert FunctionCall("abs", [lit(-3)]).evaluate(ROW) == 3
        assert FunctionCall("round", [lit(2.567), lit(1)]).evaluate(ROW) == 2.6

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            FunctionCall("nope", [col("a")])

    def test_concat_handles_null(self):
        row = Row(("s",), (None,))
        assert concat(col("s"), lit("x")).evaluate(row) == "x"


class TestSargableAnalysis:
    def test_split_conjuncts_flattens_nested_and(self):
        predicate = and_(col("a").gt(1), and_(col("b").lt(2), col("c").eq(3)))
        assert len(split_conjuncts(predicate)) == 3

    def test_split_conjuncts_none(self):
        assert split_conjuncts(None) == []

    def test_split_sargable(self):
        predicate = and_(col("k").eq(5), col("v").gt(10))
        sargable, residual = split_sargable(predicate, ["k"])
        assert sargable is not None and sargable.references() == {"k"}
        assert residual is not None and residual.references() == {"v"}

    def test_fully_sargable(self):
        sargable, residual = split_sargable(col("k").eq(5), ["k"])
        assert sargable is not None
        assert residual is None

    def test_not_sargable(self):
        sargable, residual = split_sargable(col("v").eq(5), ["k"])
        assert sargable is None
        assert residual is not None

    def test_key_predicate_function(self):
        sargable, _ = split_sargable(col("k").gt(5), ["k"])
        fn = key_predicate_function(sargable, ["k"])
        assert fn((6,)) is True
        assert fn((5,)) is False

    def test_key_predicate_function_none(self):
        assert key_predicate_function(None, ["k"]) is None


class TestAggregateFunctions:
    def test_sum(self):
        agg = Sum()
        state = agg.initial()
        for value in (1, 2, None, 3):
            state = agg.add(state, value)
        assert agg.result(state) == 6
        assert agg.merge(state, 4) == 10

    def test_count(self):
        agg = Count()
        state = agg.initial()
        for value in (1, None, "x"):
            state = agg.add(state, value)
        assert agg.result(state) == 2

    def test_min_max(self):
        low, high = Min(), Max()
        ls, hs = low.initial(), high.initial()
        for value in (5, 2, 8, None):
            ls = low.add(ls, value)
            hs = high.add(hs, value)
        assert low.result(ls) == 2
        assert high.result(hs) == 8

    def test_avg(self):
        agg = Avg()
        state = agg.initial()
        for value in (2, 4, None):
            state = agg.add(state, value)
        assert agg.result(state) == 3.0
        assert agg.result(agg.initial()) is None

    def test_registry(self):
        assert set(AGGREGATES) == {"sum", "count", "min", "max", "avg"}

    def test_aggregate_spec_repr(self):
        spec = AggregateSpec("total", Sum(), col("x"))
        assert "total" in repr(spec)

    @given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=50),
           split=st.integers(0, 50))
    @settings(max_examples=50)
    def test_partial_merge_equals_direct(self, values, split):
        """Aggregating in two partials and merging equals aggregating directly."""
        split = min(split, len(values))
        for factory in (Sum, Count, Min, Max, Avg):
            agg = factory()
            direct = agg.initial()
            for value in values:
                direct = agg.add(direct, value)
            left = agg.initial()
            for value in values[:split]:
                left = agg.add(left, value)
            right = agg.initial()
            for value in values[split:]:
                right = agg.add(right, value)
            assert agg.result(agg.merge(left, right)) == agg.result(direct)
