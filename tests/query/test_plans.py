"""Tests for logical plans, physical plans and the SQL frontend."""

import pytest

from repro.common.errors import PlanError, SQLSyntaxError
from repro.common.types import Schema
from repro.query.expressions import AggregateSpec, Sum, col, lit
from repro.query.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
    relations_in,
    validate_plan,
)
from repro.query.physical import (
    COLLECT_APPEND,
    PhysicalPlan,
    PlanBuilder,
)
from repro.query.sql import parse_query

R = Schema("R", ["x", "y"], key=["x"])
S = Schema("S", ["u", "yy", "z"], key=["u"])


class TestLogicalPlans:
    def test_scan_outputs(self):
        assert LogicalScan(R).output_attributes() == ("x", "y")
        assert LogicalScan(R).referenced_relations() == {"R"}

    def test_select_preserves_attributes(self):
        plan = LogicalSelect(LogicalScan(R), col("x").eq("a"))
        assert plan.output_attributes() == ("x", "y")

    def test_project_outputs(self):
        plan = LogicalProject(LogicalScan(R), [("renamed", col("y"))])
        assert plan.output_attributes() == ("renamed",)
        assert plan.is_simple_projection()

    def test_project_with_expression_not_simple(self):
        plan = LogicalProject(LogicalScan(R), [("computed", col("y") + lit(1))])
        assert not plan.is_simple_projection()

    def test_join_outputs_and_keys(self):
        join = LogicalJoin(LogicalScan(R), LogicalScan(S), [("y", "yy")])
        assert join.output_attributes() == ("x", "y", "u", "yy", "z")
        assert join.left_keys == ("y",)
        assert join.right_keys == ("yy",)

    def test_join_requires_condition(self):
        with pytest.raises(PlanError):
            LogicalJoin(LogicalScan(R), LogicalScan(S), [])

    def test_join_validates_attributes(self):
        with pytest.raises(PlanError):
            LogicalJoin(LogicalScan(R), LogicalScan(S), [("nope", "yy")])

    def test_aggregate_outputs(self):
        agg = LogicalAggregate(
            LogicalScan(S), ["yy"], [AggregateSpec("total", Sum(), col("z"))]
        )
        assert agg.output_attributes() == ("yy", "total")

    def test_aggregate_validates_group_by(self):
        with pytest.raises(PlanError):
            LogicalAggregate(LogicalScan(S), ["missing"], [])

    def test_aggregate_requires_something(self):
        with pytest.raises(PlanError):
            LogicalAggregate(LogicalScan(S), [], [])

    def test_validate_plan_catches_bad_references(self):
        plan = LogicalSelect(LogicalScan(R), col("nope").eq(1))
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_validate_plan_accepts_valid(self):
        join = LogicalJoin(LogicalScan(R), LogicalScan(S), [("y", "yy")])
        validate_plan(LogicalSelect(join, col("z").gt(1)))

    def test_relations_in(self):
        join = LogicalJoin(LogicalScan(R), LogicalScan(S), [("y", "yy")])
        assert [scan.schema.name for scan in relations_in(join)] == ["R", "S"]

    def test_query_metadata(self):
        query = LogicalQuery(LogicalScan(R), order_by=[("x", True)], limit=5, name="q")
        assert query.output_attributes() == ("x", "y")
        assert query.referenced_relations() == {"R"}


class TestPhysicalPlans:
    def build_plan(self):
        builder = PlanBuilder()
        scan_r = builder.scan(R)
        scan_s = builder.scan(S)
        rehash = builder.rehash(scan_r, ["y"])
        join = builder.hash_join(rehash, scan_s, ["y"], ["yy"])
        ship = builder.ship(join)
        return PhysicalPlan(root=ship, name="test")

    def test_operators_post_order(self):
        plan = self.build_plan()
        ops = plan.operators()
        assert ops[-1] is plan.root
        assert len({op.op_id for op in ops}) == len(ops)

    def test_scans_and_exchanges(self):
        plan = self.build_plan()
        assert len(plan.scans()) == 2
        assert len(plan.rehashes()) == 1
        assert len(plan.exchanges()) == 2

    def test_operator_lookup_and_parent(self):
        plan = self.build_plan()
        scan = plan.scans()[0]
        assert plan.operator(scan.op_id) is scan
        parent = plan.parent_of(scan.op_id)
        assert parent is not None
        with pytest.raises(PlanError):
            plan.operator(999)

    def test_root_must_be_ship(self):
        builder = PlanBuilder()
        scan = builder.scan(R)
        with pytest.raises(PlanError):
            PhysicalPlan(root=scan)  # type: ignore[arg-type]

    def test_output_attributes_and_describe(self):
        plan = self.build_plan()
        assert plan.output_attributes() == ("x", "y", "u", "yy", "z")
        description = plan.describe()
        assert "HashJoin" in description and "Ship" in description

    def test_estimated_size_positive(self):
        assert self.build_plan().estimated_size() > 128

    def test_collector_mode_default(self):
        assert self.build_plan().root.collector_mode == COLLECT_APPEND


class TestSQLParser:
    SCHEMAS = {"R": R, "S": S}

    def test_simple_select_star(self):
        query = parse_query("SELECT * FROM R", self.SCHEMAS)
        assert isinstance(query.root, LogicalScan)

    def test_projection(self):
        query = parse_query("SELECT x FROM R", self.SCHEMAS)
        assert isinstance(query.root, LogicalProject)
        assert query.output_attributes() == ("x",)

    def test_where_clause(self):
        query = parse_query("SELECT * FROM R WHERE x = 'a' AND y > 3", self.SCHEMAS)
        assert isinstance(query.root, LogicalSelect)

    def test_join_query(self):
        query = parse_query(
            "SELECT x, z FROM R, S WHERE y = yy AND z < 100", self.SCHEMAS
        )
        assert query.referenced_relations() == {"R", "S"}

    def test_group_by_aggregate(self):
        query = parse_query(
            "SELECT x, MIN(z) FROM R, S WHERE y = yy GROUP BY x", self.SCHEMAS
        )
        assert isinstance(query.root, LogicalAggregate)
        assert query.root.group_by == ["x"]

    def test_aggregate_alias(self):
        query = parse_query("SELECT SUM(z) AS total FROM S", self.SCHEMAS)
        assert query.output_attributes() == ("total",)

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) AS n FROM S", self.SCHEMAS)
        assert query.output_attributes() == ("n",)

    def test_order_by_and_limit(self):
        query = parse_query("SELECT * FROM R ORDER BY x DESC LIMIT 10", self.SCHEMAS)
        assert query.order_by == [("x", False)]
        assert query.limit == 10

    def test_between_and_in(self):
        query = parse_query(
            "SELECT * FROM S WHERE z BETWEEN 1 AND 10 AND u IN ('a', 'b')", self.SCHEMAS
        )
        assert isinstance(query.root, LogicalSelect)

    def test_arithmetic_in_select(self):
        query = parse_query("SELECT SUM(z * 2) AS doubled FROM S", self.SCHEMAS)
        assert isinstance(query.root, LogicalAggregate)

    def test_function_call(self):
        query = parse_query("SELECT concat(x, y) AS c FROM R", self.SCHEMAS)
        assert query.output_attributes() == ("c",)

    def test_qualified_names_are_stripped(self):
        query = parse_query("SELECT R.x FROM R WHERE R.y = 'v'", self.SCHEMAS)
        assert query.output_attributes() == ("x",)

    def test_string_escaping(self):
        query = parse_query("SELECT * FROM R WHERE y = 'it''s'", self.SCHEMAS)
        assert isinstance(query.root, LogicalSelect)

    def test_unknown_relation(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT * FROM Unknown", self.SCHEMAS)

    def test_syntax_errors(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT FROM R", self.SCHEMAS)
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT * R", self.SCHEMAS)
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT * FROM R LIMIT abc", self.SCHEMAS)
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT * FROM R extra tokens %%", self.SCHEMAS)
