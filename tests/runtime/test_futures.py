"""Unit tests for OpFuture: lifecycle, callbacks, latency accounting."""

import pytest

from repro.common.errors import ReproError
from repro.runtime import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    OpCancelledError,
    OpFuture,
)


def test_initial_state():
    future = OpFuture("query", "node-000", label="q")
    assert future.state == PENDING
    assert not future.done()
    assert not future.succeeded()
    assert future.latency is None
    assert future.queue_delay is None


def test_result_raises_until_done():
    future = OpFuture("query", "node-000", label="q")
    with pytest.raises(ReproError, match="did not complete"):
        future.result()
    future._mark_submitted(0.0)
    future._mark_running(1.0)
    future._set_result(42, 3.0)
    assert future.state == DONE
    assert future.result() == 42
    assert future.queue_delay == 1.0
    assert future.service_time == 2.0
    assert future.latency == 3.0


def test_failed_future_reraises_the_error():
    future = OpFuture("retrieve", "node-000", label="R@1")
    error = ValueError("boom")
    future._set_error(error, 1.0)
    assert future.state == FAILED
    assert future.exception() is error
    with pytest.raises(ValueError, match="boom"):
        future.result()


def test_cancelled_future_raises_cancelled_error():
    future = OpFuture("query", "node-000", label="q")
    future._set_cancelled(1.0)
    assert future.state == CANCELLED
    assert future.cancelled()
    with pytest.raises(OpCancelledError):
        future.result()


def test_done_callbacks_fire_once_in_order():
    future = OpFuture("query", "node-000", label="q")
    fired = []
    future.add_done_callback(lambda f: fired.append(("a", f.state)))
    future.add_done_callback(lambda f: fired.append(("b", f.state)))
    future._set_result("rows", 1.0)
    assert fired == [("a", DONE), ("b", DONE)]


def test_callback_added_after_completion_fires_immediately():
    future = OpFuture("query", "node-000", label="q")
    future._set_result("rows", 1.0)
    fired = []
    future.add_done_callback(fired.append)
    assert fired == [future]


def test_cancel_without_scheduler_is_a_noop():
    future = OpFuture("query", "node-000", label="q")
    assert future.cancel() is False
    assert not future.done()


def test_incomplete_message_is_customisable():
    future = OpFuture("publish", "node-000", label="R")
    future._incomplete = "publish of 'R' at epoch 3 did not complete"
    with pytest.raises(ReproError, match="publish of 'R' at epoch 3"):
        future.result()
