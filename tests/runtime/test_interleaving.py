"""Interleaved-operation correctness: the contracts concurrency must keep.

Three scenarios the single-operation harness could never produce:

* two queries from *different initiators* in flight at once — participant
  state must not cross between them (query ids are cluster-unique);
* a query racing a covering publish — the initiator's semantic result cache
  must never serve (or store) rows for an epoch the publish superseded;
* a node failure while two queries are in flight — both initiators must
  drive their own recovery to a correct answer.
"""

import pytest

from repro.cache import CacheConfig
from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.query.expressions import col
from repro.query.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)
from repro.query.reference import evaluate_query, normalise
from repro.query.expressions import AggregateSpec, Sum
from repro.storage.client import UpdateBatch


def build_relations(num_r: int = 240, num_s: int = 60, groups: int = 12):
    r = RelationData(Schema("R", ["x", "y", "v"], key=["x"]))
    s = RelationData(Schema("S", ["u", "yy", "z"], key=["u"]))
    for i in range(num_r):
        r.add(f"k{i}", f"g{i % groups}", i)
    for j in range(num_s):
        s.add(f"u{j}", f"g{j % groups}", j * 10)
    return r, s


def scan_query(schema, name="scan"):
    return LogicalQuery(LogicalScan(schema), name=name)


class TestConcurrentInitiators:
    def test_two_queries_from_different_initiators_stay_isolated(self):
        r, s = build_relations()
        cluster = Cluster(5)
        cluster.publish_relations([r, s])
        relations = {"R": r, "S": s}

        join = LogicalQuery(
            LogicalJoin(LogicalScan(r.schema), LogicalScan(s.schema), [("y", "yy")]),
            name="join",
        )
        filtered = LogicalQuery(
            LogicalSelect(LogicalScan(r.schema), col("v").lt(100)), name="filtered"
        )
        f1 = cluster.session("node-000").submit_query(join)
        f2 = cluster.session("node-001").submit_query(filtered)
        cluster.run()

        # Both in flight at once, each initiator collected exactly its own
        # result — no rows leaked across the concurrently executing queries.
        assert f2.admitted_at < f1.completed_at
        assert normalise(f1.result().rows) == normalise(evaluate_query(join, relations))
        assert normalise(f2.result().rows) == normalise(
            evaluate_query(filtered, relations)
        )

    def test_same_query_everywhere_returns_identical_answers(self):
        r, s = build_relations()
        cluster = Cluster(4)
        cluster.publish_relations([r, s])
        query = LogicalQuery(
            LogicalAggregate(
                LogicalScan(r.schema), ["y"], [AggregateSpec("total", Sum(), col("v"))]
            ),
            name="totals",
        )
        futures = [
            cluster.session(address).submit_query(query)
            for address in cluster.addresses
        ]
        cluster.run()
        expected = normalise(evaluate_query(query, {"R": r, "S": s}))
        for future in futures:
            assert normalise(future.result().rows) == expected


class TestQueryRacingPublish:
    def _updated(self, r: RelationData) -> UpdateBatch:
        """A covering update: rewrite every group's smallest member."""
        return UpdateBatch(
            schema=r.schema,
            modifications=[(f"k{i}", f"g{i % 12}", 10_000 + i) for i in range(12)],
        )

    def test_result_cache_never_serves_the_stale_epoch(self):
        r, _s = build_relations()
        cluster = Cluster(4, cache_config=CacheConfig())
        cluster.publish_relations([r])
        query = scan_query(r.schema)

        # Warm the result cache at epoch 1.
        warm = cluster.query(query)
        assert cluster.query(query).statistics.result_cache_hit

        # Race: a query (at the durable epoch 1) and a covering publish
        # (epoch 2) in flight together.
        racing = cluster.session("node-000").submit_query(query)
        publish = cluster.session("node-001").submit_publish(self._updated(r))
        cluster.run()
        assert publish.result() == 2
        assert racing.succeeded()

        # After the publish, a query at the new epoch must see the new rows —
        # whatever the race stored or invalidated, the stale epoch-1 answer
        # must not come back.
        result = cluster.query(query)
        rows = {row[0]: row[2] for row in result.rows}
        assert rows["k0"] == 10_000
        assert rows["k11"] == 10_011
        assert len(result.rows) == len(warm.rows)

        # And queries pinned to the old epoch still see the old values.
        old = cluster.query(query, epoch=1)
        old_rows = {row[0]: row[2] for row in old.rows}
        assert old_rows["k0"] == 0

    def test_racing_fill_is_vetoed_not_mispoisoned(self):
        """A result completing after a racing publish must not enter the cache."""
        r, _s = build_relations()
        cluster = Cluster(4, cache_config=CacheConfig())
        cluster.publish_relations([r])
        query = scan_query(r.schema)

        racing = cluster.session("node-000").submit_query(query)
        cluster.session("node-001").submit_publish(self._updated(r))
        cluster.run()
        assert racing.succeeded()

        # The next query at the post-publish epoch runs cold (no poisoned
        # entry to hit) and returns the published values.
        result = cluster.query(query)
        assert not result.statistics.result_cache_hit
        assert {row[0]: row[2] for row in result.rows}["k0"] == 10_000

    def test_cache_statistics_stay_consistent_under_interleaving(self):
        r, _s = build_relations()
        cluster = Cluster(4, cache_config=CacheConfig())
        cluster.publish_relations([r])
        query = scan_query(r.schema)
        cluster.query(query)

        futures = [cluster.session(a).submit_query(query) for a in cluster.addresses]
        futures.append(cluster.session("node-002").submit_retrieve("R"))
        cluster.session("node-001").submit_publish(self._updated(r))
        cluster.run()
        assert all(f.succeeded() for f in futures)

        stats = cluster.cache_statistics()
        for tier in ("node", "result"):
            tier_stats = stats[tier]
            assert tier_stats.hits >= 0 and tier_stats.misses >= 0
            assert tier_stats.bytes_saved >= 0
        # Invalidation happened (the publish dropped covered entries), and the
        # system still answers correctly afterwards.
        post = cluster.query(query)
        assert {row[0]: row[2] for row in post.rows}["k5"] == 10_005


class TestAbortFanOut:
    def test_abort_is_sent_once_per_query_and_node_even_if_rebroadcast(self):
        r, _s = build_relations()
        cluster = Cluster(4)
        cluster.publish_relations([r])
        service = cluster.query_service("node-000")

        aborts: list[tuple[str, str]] = []
        original_cast = service.rpc.cast

        def spying_cast(dst, method, payload, size):
            if method == "query.abort":
                aborts.append((payload["query_id"], dst))
            return original_cast(dst, method, payload, size)

        service.rpc.cast = spying_cast

        # Force a double fan-out: every completion broadcast runs twice; the
        # per-(query_id, node) guard must collapse the repeat to nothing.
        original_send = service._send_aborts

        def double_send(active, include_self=True):
            original_send(active, include_self)
            original_send(active, include_self)

        service._send_aborts = double_send
        result = cluster.query(scan_query(r.schema))
        assert len(result.rows) == 240
        assert len(aborts) == len(set(aborts))
        assert len(aborts) == result.statistics.participating_nodes


class TestFailureWithConcurrentQueries:
    @pytest.mark.parametrize("recovery_mode", ["incremental", "restart"])
    def test_node_failure_with_two_queries_in_flight(self, recovery_mode):
        from repro.query.service import QueryOptions

        r, s = build_relations(num_r=600, num_s=120)
        cluster = Cluster(6)
        cluster.network.failure_detection_delay = 0.0002
        cluster.publish_relations([r, s])
        cluster.enable_query_processing()
        relations = {"R": r, "S": s}

        join = LogicalQuery(
            LogicalJoin(LogicalScan(r.schema), LogicalScan(s.schema), [("y", "yy")]),
            name="join",
        )
        full = scan_query(r.schema, name="full")
        options = QueryOptions(recovery_mode=recovery_mode)
        f1 = cluster.session("node-000").submit_query(join, options=options)
        f2 = cluster.session("node-001").submit_query(full, options=options)
        victim = cluster.addresses[4]
        cluster.fail_node(victim, at_time=cluster.now + 0.0004)
        cluster.run()

        assert f1.succeeded() and f2.succeeded()
        assert normalise(f1.result().rows) == normalise(evaluate_query(join, relations))
        assert normalise(f2.result().rows) == normalise(evaluate_query(full, relations))
        # The failure landed while the queries were in flight and both
        # initiators drove their own recovery.
        handled = (
            f1.result().statistics.failures_handled
            + f2.result().statistics.failures_handled
        )
        assert handled >= 2
