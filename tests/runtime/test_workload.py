"""Workload drivers: determinism, record keeping, percentile math."""

import pytest

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.runtime import (
    ClosedLoopDriver,
    OpenLoopDriver,
    SchedulerConfig,
    percentile,
)


def relation(rows: int = 100) -> RelationData:
    data = RelationData(Schema("R", ["k", "v"], key=["k"]))
    for i in range(rows):
        data.add(f"k{i:04d}", i)
    return data


def build_cluster(**kwargs) -> Cluster:
    cluster = Cluster(4, **kwargs)
    cluster.publish_relations([relation()])
    return cluster


def retrieve_op(session, _client, _op):
    return session.submit_retrieve("R")


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 0.95) == 10.0
        assert percentile(values, 1.0) == 10.0

    def test_empty_and_validation(self):
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 1.0) == 3.0


class TestClosedLoop:
    def test_runs_every_client_to_completion(self):
        cluster = build_cluster()
        driver = ClosedLoopDriver(
            cluster.runtime, num_clients=3, make_op=retrieve_op, ops_per_client=4
        )
        report = driver.run()
        assert len(report.records) == 12
        assert report.completed == 12 and report.errors == 0
        assert report.throughput > 0
        assert all(r.latency > 0 for r in report.records)
        assert report.p50_latency <= report.p99_latency
        # Clients are spread over distinct initiating nodes.
        assert len({r.client for r in report.records}) == 3

    def test_closed_loop_never_exceeds_one_op_per_client(self):
        cluster = build_cluster()
        driver = ClosedLoopDriver(
            cluster.runtime, num_clients=2, make_op=retrieve_op, ops_per_client=3
        )
        report = driver.run()
        # Per client, operations are strictly sequential in simulated time.
        for client in range(2):
            ops = sorted(
                (r for r in report.records if r.client == client),
                key=lambda r: r.submitted_at,
            )
            for earlier, later in zip(ops, ops[1:]):
                assert later.submitted_at >= earlier.completed_at

    def test_think_time_spaces_submissions(self):
        cluster = build_cluster()
        driver = ClosedLoopDriver(
            cluster.runtime, num_clients=1, make_op=retrieve_op,
            ops_per_client=3, think_time=0.05,
        )
        report = driver.run()
        ops = sorted(report.records, key=lambda r: r.submitted_at)
        for earlier, later in zip(ops, ops[1:]):
            assert later.submitted_at - earlier.completed_at >= 0.05

    def test_deterministic_across_identical_clusters(self):
        def run_once():
            cluster = build_cluster()
            driver = ClosedLoopDriver(
                cluster.runtime, num_clients=4, make_op=retrieve_op, ops_per_client=3
            )
            report = driver.run()
            return [(r.client, r.submitted_at, r.completed_at) for r in report.records]

        assert run_once() == run_once()

    def test_summary_row_is_table_ready(self):
        cluster = build_cluster()
        report = ClosedLoopDriver(
            cluster.runtime, num_clients=2, make_op=retrieve_op, ops_per_client=2
        ).run()
        summary = report.summary()
        assert summary["ops"] == 4
        assert summary["completed"] == 4
        assert summary["throughput_ops_s"] == pytest.approx(report.throughput)


class TestOpenLoop:
    def test_poisson_arrivals_are_deterministic_per_seed(self):
        cluster = build_cluster()
        driver = OpenLoopDriver(
            cluster.runtime, make_op=retrieve_op, num_ops=10,
            arrival_rate=500.0, seed=7,
        )
        twin = OpenLoopDriver(
            build_cluster().runtime, make_op=retrieve_op, num_ops=10,
            arrival_rate=500.0, seed=7,
        )
        assert driver.arrival_offsets() == twin.arrival_offsets()
        offsets = driver.arrival_offsets()
        assert len(offsets) == 10
        assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_all_arrivals_complete(self):
        cluster = build_cluster()
        report = OpenLoopDriver(
            cluster.runtime, make_op=retrieve_op, num_ops=12, arrival_rate=1000.0
        ).run()
        assert report.completed == 12 and report.errors == 0
        assert report.duration > 0

    def test_load_shedding_does_not_overflow_the_stack(self):
        cluster = build_cluster(
            scheduler_config=SchedulerConfig(max_in_flight_total=1, queue_capacity=0)
        )
        driver = ClosedLoopDriver(
            cluster.runtime, num_clients=2, make_op=retrieve_op, ops_per_client=1500
        )
        # Most submissions are rejected synchronously; the continuation is
        # deferred through the event queue, so 3000 chained ops must not
        # recurse one stack frame each.
        report = driver.run()
        assert len(report.records) == 3000
        assert report.errors > 0
        assert report.completed + report.errors == 3000
        assert report.scheduler["rejected"] == report.errors

    def test_overload_queues_behind_the_admission_cap(self):
        cluster = build_cluster(
            scheduler_config=SchedulerConfig(max_in_flight_total=2)
        )
        report = OpenLoopDriver(
            cluster.runtime, make_op=retrieve_op, num_ops=16, arrival_rate=1e6
        ).run()
        assert report.completed == 16
        assert report.scheduler["max_in_flight"] <= 2
        assert report.scheduler["peak_queued"] > 0
        assert report.mean_queue_delay > 0
