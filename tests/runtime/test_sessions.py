"""Session-level tests: futures over real cluster operations.

The blocking wrappers are shims over this layer, so these tests exercise the
asynchronous path directly — submissions without driving the loop, multiple
operations genuinely in flight at once, timeouts and load shedding against
live cluster traffic.
"""

import pytest

from repro.cluster import Cluster
from repro.common.errors import RelationNotFoundError
from repro.common.types import RelationData, Schema
from repro.query.logical import LogicalQuery, LogicalScan
from repro.query.reference import evaluate_query, normalise
from repro.runtime import (
    DONE,
    PENDING,
    AdmissionRejectedError,
    OpTimeoutError,
    SchedulerConfig,
)


def relation(name: str = "R", rows: int = 120) -> RelationData:
    data = RelationData(Schema(name, ["k", "grp", "v"], key=["k"]))
    for i in range(rows):
        data.add(f"{name}-{i:04d}", f"g{i % 7}", i)
    return data


@pytest.fixture
def cluster():
    cluster = Cluster(4)
    cluster.publish_relations([relation()])
    return cluster


class TestSubmission:
    def test_submit_does_not_drive_the_loop(self, cluster):
        future = cluster.session().submit_retrieve("R")
        assert not future.done()
        cluster.run()
        assert future.succeeded()
        assert len(future.result().tuples) == 120

    def test_query_future_resolves_to_query_result(self, cluster):
        query = LogicalQuery(LogicalScan(cluster.catalog.schema("R")), name="scan")
        future = cluster.session().submit_query(query)
        cluster.run()
        result = future.result()
        assert normalise(result.rows) == normalise(
            evaluate_query(query, {"R": relation()})
        )
        assert result.statistics.execution_time > 0
        assert future.latency is not None and future.latency > 0

    def test_publish_future_resolves_to_epoch_and_advances_durable(self, cluster):
        future = cluster.session().submit_publish(relation("S", 30))
        assert cluster.current_epoch == 2  # assigned at submission
        assert cluster.durable_epoch == 1  # not durable until the loop runs
        cluster.run()
        assert future.result() == 2
        assert cluster.durable_epoch == 2
        assert len(cluster.retrieve("S").tuples) == 30

    def test_retrieve_error_propagates_through_the_future(self, cluster):
        future = cluster.session().submit_retrieve("nope")
        cluster.run()
        assert future.done() and not future.succeeded()
        with pytest.raises(RelationNotFoundError):
            future.result()

    def test_sessions_are_bound_to_their_initiator(self, cluster):
        session = cluster.session("node-002")
        future = session.submit_query(
            LogicalQuery(LogicalScan(cluster.catalog.schema("R")), name="scan")
        )
        cluster.run()
        assert future.initiator == "node-002"
        assert future.result().statistics.rows_shipped > 0


class TestConcurrentOperations:
    def test_two_initiators_overlap_in_simulated_time(self, cluster):
        query = LogicalQuery(LogicalScan(cluster.catalog.schema("R")), name="scan")
        f1 = cluster.session("node-000").submit_query(query)
        f2 = cluster.session("node-001").submit_query(query)
        cluster.run()
        expected = normalise(evaluate_query(query, {"R": relation()}))
        assert normalise(f1.result().rows) == expected
        assert normalise(f2.result().rows) == expected
        # Both were admitted before either finished: genuinely concurrent.
        assert f2.admitted_at < f1.completed_at
        assert cluster.runtime.stats.max_in_flight >= 2

    def test_many_concurrent_retrievals_from_every_node(self, cluster):
        futures = [
            cluster.session(address).submit_retrieve("R")
            for address in cluster.addresses
        ]
        cluster.run()
        for future in futures:
            assert sorted(future.result().rows()) == sorted(relation().rows)

    def test_concurrent_retrievals_from_one_node_are_multiplexed(self, cluster):
        cluster.publish(relation("S", 40))
        session = cluster.session("node-000")
        # Two retrievals and a query, all outstanding at once on one storage
        # client — per-request ids keep the manifest/result streams separate.
        f_r = session.submit_retrieve("R")
        f_s = session.submit_retrieve("S")
        f_q = session.submit_query(
            LogicalQuery(LogicalScan(cluster.catalog.schema("R")), name="scan")
        )
        cluster.run()
        assert sorted(f_r.result().rows()) == sorted(relation().rows)
        assert sorted(f_s.result().rows()) == sorted(relation("S", 40).rows)
        assert len(f_q.result().rows) == 120

    def test_overlapping_publishes_get_distinct_epochs(self, cluster):
        f1 = cluster.session().submit_publish(relation("S", 20))
        f2 = cluster.session("node-001").submit_publish(relation("T", 20))
        assert (f1.state, f2.state) == (PENDING, PENDING) or True  # states vary by caps
        cluster.run()
        assert {f1.result(), f2.result()} == {2, 3}
        assert cluster.durable_epoch == 3
        assert len(cluster.retrieve("S").tuples) == 20
        assert len(cluster.retrieve("T").tuples) == 20


class TestAdmissionAgainstRealTraffic:
    def test_cap_defers_but_completes_everything(self):
        cluster = Cluster(
            4,
            scheduler_config=SchedulerConfig(
                max_in_flight_total=2, max_in_flight_per_initiator=1
            ),
        )
        cluster.publish_relations([relation()])
        futures = [
            cluster.session(cluster.addresses[i % 4]).submit_retrieve("R")
            for i in range(6)
        ]
        cluster.run()
        assert all(f.state == DONE for f in futures)
        stats = cluster.runtime.stats
        assert stats.max_in_flight <= 2
        assert stats.peak_queued >= 1
        # Queued operations measured a non-zero admission wait.
        assert any(f.queue_delay > 0 for f in futures)

    def test_queue_overflow_sheds_load(self):
        cluster = Cluster(
            2,
            scheduler_config=SchedulerConfig(max_in_flight_total=1, queue_capacity=1),
        )
        cluster.publish_relations([relation()])
        session = cluster.session()
        futures = [session.submit_retrieve("R") for _ in range(3)]
        assert futures[2].done()  # rejected synchronously at submission
        with pytest.raises(AdmissionRejectedError):
            futures[2].result()
        cluster.run()
        assert futures[0].succeeded() and futures[1].succeeded()

    def test_rejected_publish_leaves_no_phantom_state(self):
        cluster = Cluster(
            2,
            scheduler_config=SchedulerConfig(max_in_flight_total=1, queue_capacity=0),
        )
        cluster.publish_relations([relation()])  # epoch 1
        blocker = cluster.session().submit_retrieve("R")  # holds the only slot
        rejected = cluster.session().submit_publish(relation("S", 10))
        with pytest.raises(AdmissionRejectedError):
            rejected.result()
        # The shed publish never registered its relation nor burned an epoch.
        assert "S" not in cluster.catalog
        assert cluster.current_epoch == 1
        cluster.run()
        assert blocker.succeeded()
        # The next publish takes the next epoch — no gap left behind.
        assert cluster.publish(relation("S", 10)) == 2
        assert len(cluster.retrieve("S").tuples) == 10

    def test_cancelled_queued_publish_leaves_no_phantom_state(self):
        cluster = Cluster(
            2, scheduler_config=SchedulerConfig(max_in_flight_total=1)
        )
        cluster.publish_relations([relation()])
        blocker = cluster.session().submit_retrieve("R")
        queued = cluster.session().submit_publish(relation("S", 10))
        assert queued.cancel() is True
        assert "S" not in cluster.catalog
        assert cluster.current_epoch == 1
        cluster.run()
        assert blocker.succeeded()
        assert cluster.durable_epoch == 1

    def test_timeout_fails_a_slow_operation(self):
        cluster = Cluster(2)
        cluster.publish_relations([relation()])
        # Far tighter than any real retrieval on this network profile.
        future = cluster.session().submit_retrieve("R", timeout=1e-6)
        cluster.run()
        with pytest.raises(OpTimeoutError):
            future.result()
        assert cluster.runtime.stats.timed_out == 1

    def test_unused_timeout_does_not_stretch_the_virtual_clock(self):
        cluster = Cluster(2)
        cluster.publish_relations([relation()])
        future = cluster.session().submit_retrieve("R", timeout=60.0)
        cluster.run()
        assert future.succeeded()
        # The retrieval finished in well under a second of simulated time;
        # the moot 60 s watchdog must not have dragged the clock out.
        assert cluster.now < 1.0

    def test_cancel_queued_operation_never_runs_it(self):
        cluster = Cluster(
            2, scheduler_config=SchedulerConfig(max_in_flight_total=1)
        )
        cluster.publish_relations([relation()])
        session = cluster.session()
        first = session.submit_retrieve("R")
        second = session.submit_retrieve("R")
        assert second.cancel() is True
        cluster.run()
        assert first.succeeded()
        assert second.cancelled()
        assert second.admitted_at is None  # never left the queue
