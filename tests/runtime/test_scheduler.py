"""Unit tests for the admission-controlled scheduler.

Driven against a bare simulated network with hand-rolled launches, so every
admission decision — caps, queueing, policies, rejection, timeout,
cancellation — is observable without the full cluster stack.
"""

import pytest

from repro.net.simnet import Network
from repro.runtime import (
    FAILED,
    QUEUED,
    RUNNING,
    AdmissionRejectedError,
    DeadlineExceededError,
    OpFuture,
    OpTimeoutError,
    Scheduler,
    SchedulerConfig,
)


def make_scheduler(**kwargs):
    network = Network()
    return network, Scheduler(network, SchedulerConfig(**kwargs))


def submit(scheduler, initiator, started, timeout=None, label=""):
    future = OpFuture("op", initiator, label=label or initiator)
    scheduler.submit(future, lambda: started.append(future), timeout=timeout)
    return future


class TestAdmission:
    def test_single_op_is_admitted_and_launched_synchronously(self):
        _network, scheduler = make_scheduler()
        started = []
        future = submit(scheduler, "A", started)
        assert started == [future]
        assert future.state == RUNNING
        assert future.queue_delay == 0.0

    def test_total_cap_queues_excess_submissions(self):
        _network, scheduler = make_scheduler(max_in_flight_total=2)
        started = []
        futures = [submit(scheduler, f"n{i}", started) for i in range(4)]
        assert [f.state for f in futures] == [RUNNING, RUNNING, QUEUED, QUEUED]
        assert scheduler.stats.max_in_flight == 2
        assert scheduler.stats.queued == 2

    def test_completion_admits_the_next_queued_op(self):
        _network, scheduler = make_scheduler(max_in_flight_total=1)
        started = []
        first = submit(scheduler, "A", started)
        second = submit(scheduler, "B", started)
        assert second.state == QUEUED
        scheduler.complete(first, "done")
        assert second.state == RUNNING
        assert started == [first, second]
        assert first.result() == "done"

    def test_per_initiator_cap_is_independent_of_total(self):
        _network, scheduler = make_scheduler(
            max_in_flight_total=8, max_in_flight_per_initiator=1
        )
        started = []
        a1 = submit(scheduler, "A", started)
        a2 = submit(scheduler, "A", started)
        b1 = submit(scheduler, "B", started)
        assert a1.state == RUNNING
        assert a2.state == QUEUED  # A is at its per-initiator cap
        assert b1.state == RUNNING  # B is not
        scheduler.complete(a1, None)
        assert a2.state == RUNNING

    def test_per_initiator_cap_does_not_block_the_queue_head(self):
        _network, scheduler = make_scheduler(
            max_in_flight_total=2, max_in_flight_per_initiator=1
        )
        started = []
        a1 = submit(scheduler, "A", started)
        b1 = submit(scheduler, "B", started)
        a2 = submit(scheduler, "A", started)
        b2 = submit(scheduler, "B", started)
        scheduler.complete(b1, None)
        # a2 is the queue head but A is still at its per-initiator cap: the
        # freed slot must go to b2 rather than idle behind the head.
        assert b2.state == RUNNING
        assert a2.state == QUEUED
        scheduler.complete(a1, None)
        assert a2.state == RUNNING

    def test_full_queue_rejects_with_admission_error(self):
        _network, scheduler = make_scheduler(max_in_flight_total=1, queue_capacity=1)
        started = []
        submit(scheduler, "A", started)
        submit(scheduler, "B", started)
        rejected = submit(scheduler, "C", started)
        assert rejected.done()
        with pytest.raises(AdmissionRejectedError):
            rejected.result()
        assert scheduler.stats.rejected == 1


class TestPolicies:
    def test_fifo_preserves_arrival_order(self):
        _network, scheduler = make_scheduler(max_in_flight_total=1, policy="fifo")
        started = []
        running = submit(scheduler, "A", started)
        queued = [submit(scheduler, "A", started, label=f"A{i}") for i in range(3)]
        queued.append(submit(scheduler, "B", started, label="B0"))
        scheduler.complete(running, None)
        for expected in queued:
            assert started[-1] is expected
            scheduler.complete(expected, None)

    def test_fair_round_robins_across_initiators(self):
        _network, scheduler = make_scheduler(max_in_flight_total=1, policy="fair")
        started = []
        running = submit(scheduler, "A", started)
        for i in range(3):
            submit(scheduler, "A", started, label=f"A{i}")
        submit(scheduler, "B", started, label="B0")
        submit(scheduler, "C", started, label="C0")
        order = []
        scheduler.complete(running, None)
        while len(started) > len(order) + 1:
            op = started[len(order) + 1]
            order.append(op.label)
            scheduler.complete(op, None)
        # One op per initiator before A's backlog drains — B and C are not
        # starved behind A's burst (FIFO order would be A0 A1 A2 B0 C0).
        assert order.index("B0") < order.index("A1")
        assert order.index("C0") < order.index("A2")
        assert sorted(order) == ["A0", "A1", "A2", "B0", "C0"]

    def test_fair_policy_respects_per_initiator_cap(self):
        _network, scheduler = make_scheduler(
            max_in_flight_total=4, max_in_flight_per_initiator=1, policy="fair"
        )
        started = []
        a1 = submit(scheduler, "A", started)
        a2 = submit(scheduler, "A", started)
        b1 = submit(scheduler, "B", started)
        assert a2.state == QUEUED
        scheduler.complete(b1, None)
        assert a2.state == QUEUED  # B finishing frees nothing for A
        scheduler.complete(a1, None)
        assert a2.state == RUNNING


class TestTimeoutsAndCancellation:
    def test_running_op_times_out(self):
        network, scheduler = make_scheduler()
        started = []
        future = submit(scheduler, "A", started, timeout=0.5)
        network.run()
        assert future.done()
        with pytest.raises(OpTimeoutError):
            future.result()
        assert scheduler.stats.timed_out == 1
        assert scheduler.in_flight == 0  # the slot was reclaimed

    def test_late_completion_after_timeout_is_discarded(self):
        network, scheduler = make_scheduler()
        started = []
        future = submit(scheduler, "A", started, timeout=0.5)
        network.run()
        scheduler.complete(future, "late")
        with pytest.raises(OpTimeoutError):
            future.result()
        assert scheduler.stats.completed == 0

    def test_queued_op_times_out_without_launching(self):
        network, scheduler = make_scheduler(max_in_flight_total=1)
        started = []
        submit(scheduler, "A", started)
        waiting = submit(scheduler, "B", started, timeout=0.5)
        network.run()
        assert waiting.done()
        assert started == [started[0]]  # B never launched
        assert scheduler.stats.queued == 0

    def test_cancel_queued_op(self):
        _network, scheduler = make_scheduler(max_in_flight_total=1)
        started = []
        running = submit(scheduler, "A", started)
        waiting = submit(scheduler, "B", started)
        assert waiting.cancel() is True
        assert waiting.cancelled()
        scheduler.complete(running, None)
        assert started == [running]  # the cancelled op is skipped at dequeue
        assert scheduler.stats.cancelled == 1

    def test_cancel_running_op_frees_the_slot(self):
        _network, scheduler = make_scheduler(max_in_flight_total=1)
        started = []
        running = submit(scheduler, "A", started)
        waiting = submit(scheduler, "B", started)
        assert running.cancel() is True
        assert waiting.state == RUNNING
        scheduler.complete(running, "late")  # discarded
        assert running.cancelled()

    def test_cancel_finished_op_returns_false(self):
        _network, scheduler = make_scheduler()
        started = []
        future = submit(scheduler, "A", started)
        scheduler.complete(future, None)
        assert future.cancel() is False

    def test_completed_op_timer_does_not_idle_the_clock(self):
        network, scheduler = make_scheduler()
        started = []
        future = submit(scheduler, "A", started, timeout=60.0)
        scheduler.complete(future, "fast")
        network.run()
        # The moot watchdog was cancelled: the drain neither fires it nor
        # advances the virtual clock to its deadline.
        assert future.result() == "fast"
        assert network.now < 60.0
        assert scheduler.stats.timed_out == 0

    def test_launch_exception_fails_the_future_and_frees_the_slot(self):
        _network, scheduler = make_scheduler(max_in_flight_total=1)

        def boom() -> None:
            raise RuntimeError("launch failed")

        future = OpFuture("op", "A")
        scheduler.submit(future, boom)
        with pytest.raises(RuntimeError, match="launch failed"):
            future.result()
        assert scheduler.stats.failed == 1
        assert scheduler.in_flight == 0  # the slot came back
        started = []
        follow_up = submit(scheduler, "A", started)
        assert follow_up.state == RUNNING

    def test_launch_exception_from_the_queue_does_not_abort_the_drain(self):
        _network, scheduler = make_scheduler(max_in_flight_total=1)
        started = []
        running = submit(scheduler, "A", started)
        failing = OpFuture("op", "B")
        scheduler.submit(failing, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        trailing = submit(scheduler, "C", started)
        # Completing the running op admits the failing launch from the queue;
        # its error must resolve only its own future, then C proceeds.
        scheduler.complete(running, None)
        with pytest.raises(RuntimeError):
            failing.result()
        assert trailing.state == RUNNING


class TestStats:
    def test_counters_add_up(self):
        _network, scheduler = make_scheduler(max_in_flight_total=2)
        started = []
        futures = [submit(scheduler, f"n{i % 3}", started) for i in range(6)]
        index = 0
        while index < len(started):  # completing admits more, extending `started`
            scheduler.complete(started[index], None)
            index += 1
        stats = scheduler.stats.snapshot()
        assert stats["submitted"] == 6
        assert stats["completed"] == 6
        assert stats["admitted"] == 6
        assert stats["in_flight"] == 0 and stats["queued"] == 0
        assert stats["max_in_flight"] == 2
        assert stats["peak_queued"] == 4
        assert sum(stats["admitted_by_initiator"].values()) == 6
        assert all(f.done() for f in futures)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_in_flight_total=0)
        with pytest.raises(ValueError):
            SchedulerConfig(policy="lifo")


def submit_with_deadline(scheduler, initiator, started, deadline, label=""):
    future = OpFuture("op", initiator, label=label or initiator)
    scheduler.submit(future, lambda: started.append(future), deadline=deadline)
    return future


def seed_service_estimate(network, scheduler, seconds=0.1):
    """Complete one op taking ``seconds`` so the estimator has a sample."""
    started = []
    future = submit(scheduler, "seed", started)
    network.schedule(seconds, lambda: scheduler.complete(future, "ok"))
    network.run()
    return future


class TestDeadlineShedding:
    def test_infeasible_deadline_is_shed_at_submission(self):
        network, scheduler = make_scheduler()
        seed_service_estimate(network, scheduler, seconds=0.1)
        started = []
        future = submit_with_deadline(scheduler, "A", started, deadline=0.05)
        assert started == []  # never launched
        assert future.state == FAILED
        with pytest.raises(DeadlineExceededError):
            future.result()
        assert scheduler.stats.shed_deadline == 1
        assert scheduler.stats.in_flight == 0

    def test_first_op_of_a_type_is_admitted_without_an_estimate(self):
        # No service-time sample yet: admit and let the watchdog judge.
        _network, scheduler = make_scheduler()
        started = []
        future = submit_with_deadline(scheduler, "A", started, deadline=0.001)
        assert started == [future]
        assert future.state == RUNNING

    def test_deadline_is_rejudged_at_admission_from_the_queue(self):
        network, scheduler = make_scheduler(max_in_flight_total=1)
        seed_service_estimate(network, scheduler, seconds=0.1)
        started = []
        blocker = submit(scheduler, "A", started)
        # Feasible at submission (0.15 remaining >= 0.1 estimate)...
        queued = submit_with_deadline(scheduler, "B", started, deadline=0.15)
        bystander = submit(scheduler, "C", started)
        assert queued.state == QUEUED
        # ...but the slot frees only after 0.1s of queueing.
        network.schedule(0.1, lambda: scheduler.complete(blocker, "ok"))
        network.run()
        assert queued.state == FAILED
        with pytest.raises(DeadlineExceededError):
            queued.result()
        assert scheduler.stats.shed_deadline == 1
        # The shed entry's slot went straight to the next queued op.
        assert bystander.state == RUNNING
        assert scheduler.stats.queued == 0

    def test_deadline_without_timeout_arms_the_watchdog(self):
        network, scheduler = make_scheduler()
        started = []
        future = submit_with_deadline(scheduler, "A", started, deadline=0.05)
        network.run()
        assert future.state == FAILED
        with pytest.raises(OpTimeoutError):
            future.result()
        assert scheduler.stats.timed_out == 1


class TestBrownout:
    def build_loaded(self):
        network, scheduler = make_scheduler(
            max_in_flight_total=1, brownout_queue_threshold=2
        )
        seed_service_estimate(network, scheduler, seconds=0.1)
        started = []
        running = submit(scheduler, "A", started)
        # Brownout is evaluated on the submission/admission paths against
        # the depth *before* the new entry enqueues, so the third queued op
        # is the one that observes depth 2 and trips the switch.
        queued = [submit(scheduler, f"q{i}", started) for i in range(3)]
        return network, scheduler, running, queued

    def test_queue_depth_enters_brownout(self):
        _network, scheduler, _running, _queued = self.build_loaded()
        assert scheduler.stats.brownout_active is True
        assert scheduler.stats.brownouts == 1

    def test_brownout_sheds_the_borderline_not_the_healthy(self):
        _network, scheduler, _running, _queued = self.build_loaded()
        started = []
        # Covers the service estimate (0.1) but not the expected queue wait
        # (0.1 estimate * 3 ahead / 1 slot = 0.3) on top of it.
        borderline = submit_with_deadline(scheduler, "B", started, deadline=0.2)
        assert borderline.state == FAILED
        with pytest.raises(DeadlineExceededError):
            borderline.result()
        assert scheduler.stats.shed_brownout == 1
        # A deadline wide enough for estimate + expected wait still queues.
        healthy = submit_with_deadline(scheduler, "C", started, deadline=2.0)
        assert healthy.state == QUEUED

    def test_draining_the_queue_exits_brownout(self):
        network, scheduler, running, queued = self.build_loaded()
        scheduler.complete(running, "ok")
        # One admission: depth 3 -> 2, above the exit threshold (2 // 2).
        assert scheduler.stats.brownout_active is True
        scheduler.complete(queued[0], "ok")
        # Next admission: depth 2 -> 1 <= exit threshold, brownout is over.
        assert scheduler.stats.brownout_active is False
        assert scheduler.stats.brownouts == 1
        for future in queued[1:]:
            scheduler.complete(future, "ok")
        network.run()
        assert scheduler.stats.queued == 0
        assert scheduler.stats.brownouts == 1

    def test_without_threshold_queue_depth_never_browns_out(self):
        network, scheduler = make_scheduler(max_in_flight_total=1)
        seed_service_estimate(network, scheduler, seconds=0.1)
        started = []
        submit(scheduler, "A", started)
        for i in range(5):
            submit(scheduler, f"q{i}", started)
        assert scheduler.stats.brownout_active is False
        assert scheduler.stats.brownouts == 0


class TestQueuedEdgePaths:
    def test_timeout_while_queued_keeps_the_gauges_accurate(self):
        network, scheduler = make_scheduler(max_in_flight_total=1)
        started = []
        blocker = submit(scheduler, "A", started)
        queued = submit(scheduler, "B", started, timeout=0.05)
        assert scheduler.stats.queued == 1
        network.run()
        assert queued.state == FAILED
        with pytest.raises(OpTimeoutError):
            queued.result()
        assert scheduler.stats.timed_out == 1
        assert scheduler.stats.queued == 0
        assert scheduler.stats.peak_queued == 1
        # The dead entry is skipped on the next admission: a fresh op gets
        # the slot, not the corpse.
        third = submit(scheduler, "C", started)
        assert third.state == QUEUED
        scheduler.complete(blocker, "ok")
        assert third.state == RUNNING
        assert started == [blocker, third]

    def test_fail_initiator_ops_covers_queued_and_running(self):
        _network, scheduler = make_scheduler(
            max_in_flight_total=2, max_in_flight_per_initiator=2
        )
        started = []
        running = [submit(scheduler, "A", started, label=f"r{i}") for i in range(2)]
        queued_a = submit(scheduler, "A", started, label="q")
        queued_b = submit(scheduler, "B", started, label="other")
        assert [f.state for f in running] == [RUNNING, RUNNING]
        assert queued_a.state == QUEUED and queued_b.state == QUEUED
        count = scheduler.fail_initiator_ops("A", RuntimeError("initiator crashed"))
        assert count == 3
        for future in running + [queued_a]:
            assert future.state == FAILED
            with pytest.raises(RuntimeError):
                future.result()
        # The survivor took over a freed slot; accounting is clean.
        assert queued_b.state == RUNNING
        assert scheduler.stats.queued == 0
        assert scheduler.stats.in_flight == 1
        assert scheduler.stats.failed == 3

    def test_fail_initiator_ops_is_a_noop_for_unknown_initiators(self):
        _network, scheduler = make_scheduler()
        started = []
        future = submit(scheduler, "A", started)
        assert scheduler.fail_initiator_ops("ghost", RuntimeError("boom")) == 0
        assert future.state == RUNNING
