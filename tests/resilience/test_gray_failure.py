"""End-to-end smoke of the gray-failure bench experiment.

Runs the experiment behind the committed headline number once, at its
default scale (the simulator is deterministic, so this is the exact run
recorded in ``BENCH_perf.json``): with one node gray — slow but alive,
passing every crash check — the resilience layer must keep the read tail
within a few x of the clean baseline while the bare system's open-loop
queue buildup blows its tail past the raw slowdown factor.
"""

import pytest

from repro.bench.harness import GRAY_MODES, run_gray_failure_experiment


@pytest.fixture(scope="module")
def headline_rows():
    return {row["mode"]: row for row in run_gray_failure_experiment()}


class TestGrayFailureExperiment:
    def test_all_modes_reported_without_failures(self, headline_rows):
        assert set(headline_rows) == set(GRAY_MODES)
        for row in headline_rows.values():
            assert row["failed"] == 0, row["mode"]

    def test_hedged_tail_stays_near_clean(self, headline_rows):
        # The perf-suite gate (GRAY_HEDGED_MAX_RATIO): suspicion plus
        # health-ranked routing hides the gray node from the read path.
        assert headline_rows["hedged-degraded"]["p99_vs_clean"] <= 3.0

    def test_unhedged_tail_blows_past_the_slowdown(self, headline_rows):
        # The perf-suite gate (GRAY_UNHEDGED_MIN_RATIO): open-loop arrivals
        # queue behind the victim, amplifying the tail past the raw 10x.
        assert headline_rows["unhedged-degraded"]["p99_vs_clean"] > 10.0

    def test_ratio_is_anchored_to_the_clean_baseline(self, headline_rows):
        clean = headline_rows["clean"]
        assert clean["p99_vs_clean"] == 1.0
        for mode, row in headline_rows.items():
            if mode != "clean":
                assert row["p99_vs_clean"] == row["p99_ms"] / clean["p99_ms"]

    def test_experiment_is_deterministic(self):
        settings = dict(num_nodes=6, tuples_per_relation=200, num_ops=40)
        first = run_gray_failure_experiment(**settings)
        second = run_gray_failure_experiment(**settings)
        assert first == second
        by_mode = {row["mode"]: row for row in first}
        assert (
            by_mode["clean"]["p99_ms"]
            <= by_mode["hedged-degraded"]["p99_ms"]
            < by_mode["unhedged-degraded"]["p99_ms"]
        )

    def test_mode_subset_and_unknown_mode(self):
        settings = dict(num_nodes=6, tuples_per_relation=120, num_ops=15)
        rows = run_gray_failure_experiment(modes=("clean",), **settings)
        assert [row["mode"] for row in rows] == ["clean"]
        with pytest.raises(ValueError, match="degraded-weird"):
            run_gray_failure_experiment(modes=("degraded-weird",), **settings)
