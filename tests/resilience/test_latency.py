"""Unit tests for the per-peer latency estimator.

The estimator is the ground truth behind every adaptive decision (timeouts,
hedge delays, the latency-outlier test), so the properties under test are the
ones those policies rely on: EWMA convergence, exact windowed quantiles, and
bit-for-bit determinism across replays.
"""

from repro.resilience import LatencyEstimator


class TestEwma:
    def test_first_sample_seeds_the_mean(self):
        est = LatencyEstimator(alpha=0.2)
        est.observe(0.01)
        assert est.count == 1
        assert est.mean == 0.01
        assert est.var == 0.0

    def test_mean_converges_to_a_steady_signal(self):
        est = LatencyEstimator(alpha=0.2)
        for _ in range(100):
            est.observe(0.004)
        assert abs(est.mean - 0.004) < 1e-12
        assert est.std < 1e-6

    def test_mean_tracks_a_level_shift(self):
        est = LatencyEstimator(alpha=0.2)
        for _ in range(20):
            est.observe(0.001)
        for _ in range(60):
            est.observe(0.010)  # the peer got 10x slower
        assert est.mean > 0.009

    def test_variance_rises_with_jitter(self):
        steady = LatencyEstimator(alpha=0.2)
        jittery = LatencyEstimator(alpha=0.2)
        for index in range(50):
            steady.observe(0.005)
            jittery.observe(0.001 if index % 2 else 0.009)
        assert jittery.std > steady.std


class TestQuantileWindow:
    def test_no_samples_means_no_quantile(self):
        assert LatencyEstimator().quantile(0.95) is None

    def test_quantiles_are_exact_over_the_window(self):
        est = LatencyEstimator(window=10)
        for sample in [0.005, 0.001, 0.009, 0.003, 0.007]:
            est.observe(sample)
        assert est.quantile(0.0) == 0.001
        assert est.quantile(0.5) == 0.005
        assert est.quantile(1.0) == 0.009

    def test_ring_evicts_the_oldest_samples(self):
        est = LatencyEstimator(window=4)
        for sample in [1.0, 1.0, 1.0, 1.0, 0.002, 0.002, 0.002, 0.002]:
            est.observe(sample)
        # The four 1.0s rolled out of the window entirely.
        assert est.quantile(1.0) == 0.002

    def test_reset_clears_everything(self):
        est = LatencyEstimator()
        for _ in range(5):
            est.observe(0.5)
        est.reset()
        assert est.count == 0
        assert est.mean == 0.0
        assert est.quantile(0.5) is None


class TestDeterminism:
    def test_identical_streams_produce_identical_state(self):
        samples = [0.001 * (1 + (i * 7) % 13) for i in range(200)]
        a, b = LatencyEstimator(), LatencyEstimator()
        for sample in samples:
            a.observe(sample)
            b.observe(sample)
        assert a.to_dict() == b.to_dict()
        assert a.quantile(0.99) == b.quantile(0.99)
