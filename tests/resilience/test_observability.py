"""Registry reconciliation for the resilience counters.

The metrics registry is a *pull* surface: collectors read the live stats
objects at scrape time.  These tests hold the registry to exact agreement
with the per-node :class:`~repro.resilience.stats.ResilienceStats` — a
drifting counter would make the dashboards lie about hedge traffic — and
check that breaker gauges, scheduler shed counters and the per-query
resilience attribution all surface through the same pipeline.
"""

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.faults.injector import FaultInjector
from repro.resilience import ResilienceConfig
from repro.resilience.breaker import BREAKER_STATES


def relation(name, rows=150):
    data = RelationData(Schema(name, ["k", "grp", "v"], key=["k"]))
    for index in range(rows):
        data.add(f"{name}-{index:05d}", f"g{index % 5}", index)
    return data


def build_busy_cluster(seed=7):
    """A cluster that has actually exercised the resilience machinery."""
    cluster = Cluster(6, resilience_config=ResilienceConfig())
    injector = FaultInjector(cluster.network, seed=seed)
    cluster.publish_relations([relation(name) for name in ("R", "S")])
    injector.degrade_node(
        cluster.live_addresses()[2], cpu_slowdown=8.0, bandwidth_slowdown=8.0
    )
    cluster.start_resilience_heartbeats(0.2)
    cluster.run()
    for index in range(4):
        cluster.retrieve(("R", "S")[index % 2])
    return cluster


def samples_by_name(cluster):
    grouped = {}
    for name, tags, value in cluster.metrics.series():
        grouped.setdefault(name, []).append((tags, value))
    return grouped


class TestRegistryReconciliation:
    def test_counters_equal_the_merged_per_node_stats(self):
        cluster = build_busy_cluster()
        totals = cluster.resilience_statistics()
        grouped = samples_by_name(cluster)
        assert grouped["rpc.retries"] == [({}, totals.retries)]
        assert grouped["rpc.adaptive_timeouts"] == [({}, totals.timeouts)]
        assert grouped["rpc.breaker_skips"] == [({}, totals.breaker_skips)]
        assert grouped["rpc.heartbeats_sent"] == [({}, totals.heartbeats_sent)]
        assert grouped["rpc.heartbeats_received"] == [
            ({}, totals.heartbeats_received)
        ]
        hedge_samples = {
            tags["outcome"]: value for tags, value in grouped["rpc.hedges"]
        }
        assert hedge_samples == totals.hedges
        # The probe train definitely ran, so the scrape is not vacuous.
        assert totals.heartbeats_sent > 0

    def test_merged_stats_are_the_sum_of_the_per_node_stats(self):
        cluster = build_busy_cluster()
        totals = cluster.resilience_statistics().snapshot()
        by_hand = None
        for address in cluster.live_addresses():
            snapshot = cluster.nodes[address].resilience.stats.snapshot()
            if by_hand is None:
                by_hand = snapshot
                continue
            for counter, value in snapshot.items():
                if counter == "hedges":
                    for outcome, count in value.items():
                        by_hand["hedges"][outcome] += count
                else:
                    by_hand[counter] += value
        assert totals == by_hand

    def test_breaker_gauges_cover_every_observed_pair(self):
        cluster = build_busy_cluster()
        grouped = samples_by_name(cluster)
        gauges = {
            (tags["node"], tags["peer"]): value
            for tags, value in grouped.get("breaker.state", [])
        }
        expected = {}
        for address in cluster.live_addresses():
            resilience = cluster.nodes[address].resilience
            for peer, state in resilience.breaker_states().items():
                expected[(address, peer)] = BREAKER_STATES[state]
        assert gauges == expected
        assert expected  # the workload created at least one breaker

    def test_scheduler_shed_counters_are_scraped(self):
        cluster = build_busy_cluster()
        grouped = samples_by_name(cluster)
        reasons = {tags["reason"]: value for tags, value in grouped["scheduler.shed"]}
        assert set(reasons) == {"deadline", "brownout"}
        assert all(value >= 0 for value in reasons.values())

    def test_snapshot_keys_carry_the_tags(self):
        cluster = build_busy_cluster()
        snapshot = cluster.observability()["metrics"]
        for outcome in ("won", "lost", "suppressed_budget", "suppressed_breaker"):
            assert f"rpc.hedges{{outcome={outcome}}}" in snapshot
        assert "rpc.retries" in snapshot


class TestQueryAttribution:
    def run_query_with_overlapping_reads(self, cluster):
        """Submit a query plus retrievals in the same network drain.

        Attribution is a launch/finish delta over the live counters, so the
        query picks up exactly the resilience activity that fired while it
        was in flight — here, the hedged-failover calls of the concurrent
        retrievals.
        """
        session = cluster.session()
        query_future = session.submit_query("SELECT k, v FROM R WHERE v < 40")
        read_futures = [session.submit_retrieve(name) for name in ("R", "S")]
        cluster.run()
        assert all(future.succeeded() for future in read_futures)
        return query_future.result()

    def test_query_statistics_carry_the_resilience_delta(self):
        cluster = build_busy_cluster()
        result = self.run_query_with_overlapping_reads(cluster)
        attribution = result.statistics.resilience
        assert attribution["calls"] >= 1

    def test_quiet_query_reports_an_empty_delta(self):
        # No resilience activity in the window -> nothing to attribute.
        cluster = build_busy_cluster()
        result = cluster.query("SELECT k, v FROM R WHERE v < 40")
        assert result.statistics.resilience == {}

    def test_query_profile_renders_the_resilience_section(self):
        cluster = build_busy_cluster()
        cluster.enable_tracing()
        result = self.run_query_with_overlapping_reads(cluster)
        profile = result.statistics.profile()
        assert profile is not None
        assert profile.resilience == result.statistics.resilience
        assert "hedges launched" in profile.format()

    def test_disabled_resilience_reports_nothing(self):
        cluster = Cluster(4)
        cluster.publish_relations([relation("R")])
        result = cluster.query("SELECT k FROM R WHERE v < 10")
        assert result.statistics.resilience == {}
        grouped = samples_by_name(cluster)
        assert "rpc.hedges" not in grouped
        assert "breaker.state" not in grouped
