"""Seeded gray-failure sweeps: hedging must never change a result.

Hedged requests are duplicates of idempotent reads — whichever replica
answers, the rows are the same.  The sweep drives seeded workloads against
clusters with one gray (degraded but live) node and asserts three-way row
identity: resilience with hedging, resilience without hedging, and no
resilience layer at all.  On top of that, every run must uphold the
storm-arrester invariants: duplicate attempts bounded by the retry budget's
token arithmetic, and breakers open only on real failure evidence.

``GRAY_SEEDS`` scales the sweep (the nightly ``gray-smoke`` job runs a much
larger count than the tier-1 default); the equivalence portion is capped so
the nightly widening spends its time on the cheap invariant checks.
"""

import os
import random

import pytest

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.faults.injector import FaultInjector
from repro.resilience import ResilienceConfig

#: Tier-1 default; the nightly job sets GRAY_SEEDS into the hundreds.
SEED_COUNT = int(os.environ.get("GRAY_SEEDS", "5"))
EQUIVALENCE_SEED_COUNT = min(SEED_COUNT, 24)


def relation(name, rows=120):
    data = RelationData(Schema(name, ["k", "grp", "v"], key=["k"]))
    for index in range(rows):
        data.add(f"{name}-{index:05d}", f"g{index % 5}", index)
    return data


def run_workload(seed, resilience_config):
    """One seeded retrieval workload against a cluster with one gray node.

    Returns (sorted rows per op, cluster) so callers can compare results
    across configurations and inspect the resilience state afterwards.
    """
    cluster = Cluster(6, resilience_config=resilience_config)
    injector = FaultInjector(cluster.network, seed=seed)
    names = ("R", "S")
    cluster.publish_relations([relation(name) for name in names])
    rng = random.Random(seed)
    victim = cluster.live_addresses()[rng.randrange(6)]
    slowdown = 2.0 + 8.0 * rng.random()
    injector.degrade_node(
        victim, cpu_slowdown=slowdown, bandwidth_slowdown=slowdown
    )
    if resilience_config is not None:
        cluster.start_resilience_heartbeats(0.1)
        cluster.run()
    results = []
    for index in range(6):
        outcome = cluster.retrieve(names[index % len(names)])
        results.append(sorted(t.values for t in outcome.tuples))
    return results, cluster


def assert_budget_and_breaker_invariants(cluster):
    """Per-node storm-arrester invariants, checked after any resilience run."""
    for address in cluster.live_addresses():
        resilience = cluster.nodes[address].resilience
        if resilience is None:
            continue
        budget = resilience.retry_budget
        # Duplicates never outrun earnings: ratio * primaries + the grace.
        assert budget.spent <= budget.initial + budget.deposits * budget.ratio + 1e-9
        assert budget.tokens >= 0.0
        # Without a crash-restart in the run, every spent token is exactly
        # one launched hedge.
        assert resilience.stats.hedges_launched == budget.spent
        # A breaker that ever opened must have real failure evidence: in a
        # degrade-only workload (no crashes, no refusals) the only failure
        # kind is an adaptive timeout, and opening takes a consecutive run
        # of them.
        for breaker in resilience._breakers.values():
            if breaker.opens:
                assert resilience.stats.timeouts >= breaker.threshold


@pytest.mark.parametrize("seed", range(EQUIVALENCE_SEED_COUNT))
def test_hedging_on_off_rows_are_identical(seed):
    hedged, hedged_cluster = run_workload(seed, ResilienceConfig())
    unhedged, _ = run_workload(seed, ResilienceConfig(hedging=False))
    disabled, _ = run_workload(seed, None)
    assert hedged == unhedged, f"seed {seed}: hedging changed a result"
    assert hedged == disabled, f"seed {seed}: the resilience layer changed a result"
    assert_budget_and_breaker_invariants(hedged_cluster)


@pytest.mark.parametrize("seed", range(EQUIVALENCE_SEED_COUNT, SEED_COUNT))
def test_budget_and_breaker_invariants_hold(seed):
    _results, cluster = run_workload(seed, ResilienceConfig())
    assert_budget_and_breaker_invariants(cluster)


def test_runs_are_deterministic_per_seed():
    first, first_cluster = run_workload(3, ResilienceConfig())
    second, second_cluster = run_workload(3, ResilienceConfig())
    assert first == second
    assert (
        first_cluster.resilience_statistics().snapshot()
        == second_cluster.resilience_statistics().snapshot()
    )
