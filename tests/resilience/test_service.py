"""Behavioural tests for :class:`NodeResilience` over a bare simulated network.

Each test wires a handful of raw ``SimNode``s with resilience facades and
drives the policies directly — adaptive timeouts, the latency-outlier
hysteresis, health-ranked replica selection, and the hedged failover state
machine — without the full cluster stack in the way.
"""

from repro.net.simnet import Network
from repro.resilience import NodeResilience, ResilienceConfig


def build(count=4, config=None):
    network = Network(latency=0.001)
    addresses = [f"n{i}" for i in range(count)]
    nodes = {address: network.add_node(address) for address in addresses}
    config = config or ResilienceConfig()
    resilience = {
        address: NodeResilience(nodes[address], config, peers=lambda: addresses)
        for address in addresses
    }
    return network, addresses, nodes, resilience


def register_read(resilience, address, delay=0.0):
    """Serve ``read`` on ``address``, optionally holding the reply ``delay``s."""
    node = resilience[address]

    def handler(src, payload, respond):
        if delay > 0:
            node.network.schedule(delay, lambda: respond({"from": address}, 10))
        else:
            respond({"from": address}, 10)

    node.rpc.register("read", handler)


class TestAdaptiveTimeout:
    def test_default_before_any_sample(self):
        _network, _addrs, _nodes, res = build()
        assert res["n0"].call_timeout("n1") == res["n0"].config.default_timeout

    def test_timeout_tracks_the_observed_tail(self):
        _network, _addrs, _nodes, res = build()
        for _ in range(10):
            res["n0"].estimator("n1").observe(0.02)
        config = res["n0"].config
        assert res["n0"].call_timeout("n1") == 0.02 * config.timeout_multiplier

    def test_timeout_is_clamped_to_the_configured_band(self):
        _network, _addrs, _nodes, res = build()
        for _ in range(10):
            res["n0"].estimator("n1").observe(1e-6)
            res["n0"].estimator("n2").observe(10.0)
        config = res["n0"].config
        assert res["n0"].call_timeout("n1") == config.min_timeout
        assert res["n0"].call_timeout("n2") == config.max_timeout

    def test_outlier_peer_gets_the_fleet_reference_timeout(self):
        # A consistently slow peer must not inflate its own timeout: once it
        # is a latency outlier, patience is derived from the healthy fleet.
        _network, _addrs, _nodes, res = build(count=6)
        observer = res["n0"]
        for peer in ("n1", "n2", "n3", "n4"):
            for _ in range(10):
                observer.estimator(peer).observe(0.01)
        for _ in range(10):
            observer.estimator("n5").observe(0.1)  # 10x the fleet
        config = observer.config
        assert observer.call_timeout("n5") == 0.01 * config.timeout_multiplier
        assert observer.call_timeout("n1") == 0.01 * config.timeout_multiplier


class TestLatencySuspicion:
    def feed(self, res, peer, sample, times=10):
        for _ in range(times):
            res.estimator(peer).observe(sample)

    def test_slow_outlier_is_suspected(self):
        _network, _addrs, _nodes, res = build(count=5)
        observer = res["n0"]
        for peer in ("n1", "n2", "n3"):
            self.feed(observer, peer, 0.001)
        self.feed(observer, "n4", 0.01)
        assert observer.healthy("n4") is False
        assert observer.healthy("n1") is True

    def test_two_reference_peers_are_not_enough(self):
        # With fewer than three samples of the fleet there is no meaningful
        # median; nobody gets suspected off thin evidence.
        _network, _addrs, _nodes, res = build(count=3)
        observer = res["n0"]
        self.feed(observer, "n1", 0.001)
        self.feed(observer, "n2", 0.05)
        assert observer.healthy("n2") is True

    def test_hysteresis_holds_suspicion_between_the_thresholds(self):
        # Enter at ratio >= 3, exit only below 1.5: a suspect whose smoothed
        # latency decays into the band (cheap control replies) stays suspect.
        _network, _addrs, _nodes, res = build(count=5)
        observer = res["n0"]
        for peer in ("n1", "n2", "n3"):
            self.feed(observer, peer, 0.001)
        self.feed(observer, "n4", 0.01)
        assert observer.healthy("n4") is False
        self.feed(observer, "n4", 0.002, times=30)  # decay to ~2x median
        assert abs(observer.estimator("n4").mean / 0.001 - 2.0) < 0.3
        assert observer.healthy("n4") is False  # held by the band
        self.feed(observer, "n4", 0.001, times=40)  # true recovery
        assert observer.healthy("n4") is True

    def test_rank_replicas_is_identity_when_all_healthy(self):
        _network, _addrs, _nodes, res = build(count=5)
        targets = ["n3", "n1", "n4", "n2"]
        assert res["n0"].rank_replicas(targets) == targets

    def test_rank_replicas_demotes_the_suspect(self):
        _network, _addrs, _nodes, res = build(count=5)
        observer = res["n0"]
        for peer in ("n1", "n2", "n3"):
            self.feed(observer, peer, 0.001)
        self.feed(observer, "n4", 0.01)
        assert observer.rank_replicas(["n4", "n1", "n2"]) == ["n1", "n2", "n4"]
        assert observer.select_target(["n4", "n1"]) == "n1"

    def test_open_breaker_makes_a_peer_unhealthy(self):
        network, _addrs, _nodes, res = build()
        observer = res["n0"]
        for _ in range(observer.config.breaker_threshold):
            observer.breaker("n2").on_failure(network.now)
        assert observer.healthy("n2") is False


class TestFailover:
    def test_single_healthy_target_replies_once(self):
        network, _addrs, _nodes, res = build()
        register_read(res, "n1")
        replies = []
        res["n0"].failover_call(["n1"], "read", {}, 10, on_reply=lambda s, b: replies.append(s))
        network.run()
        assert replies == ["n1"]
        assert res["n0"].stats.calls == 1
        assert res["n0"].stats.retries == 0

    def test_silent_primary_times_out_and_fails_over(self):
        network, _addrs, _nodes, res = build()
        res["n1"].rpc.register("read", lambda src, p, respond: None)  # black hole
        register_read(res, "n2")
        replies = []
        res["n0"].failover_call(
            ["n1", "n2"], "read", {}, 10,
            on_reply=lambda s, b: replies.append(s), hedge=False,
        )
        network.run()
        assert replies == ["n2"]
        assert res["n0"].stats.timeouts == 1
        assert res["n0"].stats.retries == 1

    def test_exhaustion_fires_the_exhausted_callback_once(self):
        network, _addrs, _nodes, res = build()
        res["n1"].rpc.register("read", lambda src, p, respond: None)
        res["n2"].rpc.register("read", lambda src, p, respond: None)
        replies, exhausted = [], []
        res["n0"].failover_call(
            ["n1", "n2"], "read", {}, 10,
            on_reply=lambda s, b: replies.append(s),
            on_exhausted=lambda last: exhausted.append(last),
            hedge=False,
        )
        network.run()
        assert replies == []
        assert exhausted == ["n2"]

    def test_hedge_wins_against_a_slow_primary(self):
        network, _addrs, _nodes, res = build()
        register_read(res, "n1", delay=0.05)  # far beyond the hedge delay
        register_read(res, "n2")
        replies = []
        res["n0"].failover_call(
            ["n1", "n2"], "read", {}, 10, on_reply=lambda s, b: replies.append(s)
        )
        network.run()
        assert replies == ["n2"]  # exactly one continuation, from the hedge
        assert res["n0"].stats.hedges["won"] == 1
        assert res["n0"].stats.hedges["lost"] == 0

    def test_fast_primary_means_the_hedge_never_launches(self):
        network, _addrs, _nodes, res = build()
        register_read(res, "n1")
        register_read(res, "n2")
        replies = []
        res["n0"].failover_call(
            ["n1", "n2"], "read", {}, 10, on_reply=lambda s, b: replies.append(s)
        )
        network.run()
        assert replies == ["n1"]
        assert res["n0"].stats.hedges_launched == 0

    def test_exhausted_budget_suppresses_the_hedge(self):
        config = ResilienceConfig(retry_budget_initial=0.0, retry_budget_ratio=0.0)
        network, _addrs, _nodes, res = build(config=config)
        register_read(res, "n1", delay=0.02)
        register_read(res, "n2")
        replies = []
        res["n0"].failover_call(
            ["n1", "n2"], "read", {}, 10, on_reply=lambda s, b: replies.append(s)
        )
        network.run()
        assert replies == ["n1"]  # served late by the primary, not hedged
        assert res["n0"].stats.hedges["suppressed_budget"] == 1

    def test_open_breaker_suppresses_the_hedge(self):
        network, _addrs, _nodes, res = build()
        observer = res["n0"]
        for _ in range(observer.config.breaker_threshold):
            observer.breaker("n2").on_failure(network.now)
        register_read(res, "n1", delay=0.02)
        register_read(res, "n2")
        replies = []
        observer.failover_call(
            ["n1", "n2"], "read", {}, 10, on_reply=lambda s, b: replies.append(s)
        )
        network.run()
        assert replies == ["n1"]
        assert observer.stats.hedges["suppressed_breaker"] == 1

    def test_failover_is_fail_open_through_an_open_breaker(self):
        # The breaker's hard veto applies to optional duplicates only: when
        # the last remaining candidate's breaker is open, the retry still
        # goes there (correctness over protection), recording the skip.
        network, _addrs, _nodes, res = build()
        observer = res["n0"]
        for _ in range(observer.config.breaker_threshold):
            observer.breaker("n2").on_failure(network.now)
        # Fast observed latencies give n1 the minimum adaptive timeout, so
        # the failover happens while n2's breaker is still inside its
        # cooldown (OPEN), not after it has relaxed to half-open.
        for _ in range(10):
            observer.estimator("n1").observe(0.001)
        res["n1"].rpc.register("read", lambda src, p, respond: None)
        register_read(res, "n2")
        replies = []
        observer.failover_call(
            ["n1", "n2"], "read", {}, 10,
            on_reply=lambda s, b: replies.append(s), hedge=False,
        )
        network.run()
        assert replies == ["n2"]
        assert observer.stats.breaker_skips >= 1


class TestChase:
    def test_chase_advances_past_application_misses(self):
        network, _addrs, _nodes, res = build()
        for address, found in (("n1", False), ("n2", False), ("n3", True)):
            res[address].rpc.register(
                "lookup",
                lambda src, p, respond, f=found, a=address: respond(
                    {"found": f, "from": a}, 10
                ),
            )
        hits, exhausted = [], []
        res["n0"].chase_call(
            ["n1", "n2", "n3"], "lookup", {}, 10,
            accept=lambda src, body: bool(body["found"]) and (hits.append(src) or True),
            on_exhausted=lambda: exhausted.append(True),
            hedge=False,
        )
        network.run()
        assert hits == ["n3"]
        assert exhausted == []

    def test_chase_exhausts_when_everyone_misses(self):
        network, _addrs, _nodes, res = build()
        for address in ("n1", "n2"):
            res[address].rpc.register(
                "lookup", lambda src, p, respond: respond({"found": False}, 10)
            )
        exhausted = []
        res["n0"].chase_call(
            ["n1", "n2"], "lookup", {}, 10,
            accept=lambda src, body: bool(body["found"]),
            on_exhausted=lambda: exhausted.append(True),
            hedge=False,
        )
        network.run()
        assert exhausted == [True]


class TestHeartbeats:
    def test_probe_train_feeds_the_estimators(self):
        network, addresses, _nodes, res = build()
        rounds = res["n0"].start_heartbeats(0.2)
        network.run()
        assert rounds > 0
        assert res["n0"].stats.heartbeats_sent == rounds * (len(addresses) - 1)
        assert res["n0"].stats.heartbeats_received == res["n0"].stats.heartbeats_sent
        for peer in addresses[1:]:
            assert res["n0"].estimator(peer).count > 0

    def test_silent_peer_turns_unhealthy_inside_the_window(self):
        network, _addrs, _nodes, res = build()
        res["n0"].start_heartbeats(0.3)
        network.schedule_at(0.05, lambda: network.fail_node("n3"))
        verdicts = []
        network.schedule_at(0.25, lambda: verdicts.append(res["n0"].healthy("n3")))
        network.run()
        assert verdicts == [False]

    def test_probe_rtt_reflects_a_cpu_starved_peer(self):
        # The representative-work pong: a degraded peer answers probes as
        # slowly as it serves requests, so the estimators see the gray node.
        from repro.faults.injector import FaultInjector

        def measure(degrade):
            network, _addrs, nodes, res = build()
            if degrade:
                FaultInjector(network, seed=0).degrade_node("n1", cpu_slowdown=50.0)
            res["n0"].start_heartbeats(0.2)
            network.run()
            return res["n0"].estimator("n1").mean

        assert measure(True) > measure(False)

    def test_reset_volatile_forgets_learned_state_not_stats(self):
        network, _addrs, _nodes, res = build()
        res["n0"].start_heartbeats(0.1)
        network.run()
        sent = res["n0"].stats.heartbeats_sent
        assert sent > 0
        res["n0"].reset_volatile()
        assert res["n0"].estimator("n1").count == 0
        assert res["n0"].stats.heartbeats_sent == sent

    def test_heartbeat_schedule_is_deterministic(self):
        def run_once():
            network, addresses, _nodes, res = build()
            for address in addresses:
                res[address].start_heartbeats(0.2)
            network.run()
            return {
                address: res[address].stats.snapshot() for address in addresses
            }, network.now

        assert run_once() == run_once()
