"""Unit tests for the circuit breaker and the retry budget."""

from repro.resilience import CircuitBreaker, RetryBudget
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


class TestCircuitBreaker:
    def test_starts_closed_and_allows_traffic(self):
        breaker = CircuitBreaker(threshold=3, cooldown=0.05)
        assert breaker.state(0.0) == CLOSED
        assert breaker.allow(0.0) is True

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=0.05)
        for _ in range(2):
            breaker.on_failure(1.0)
        assert breaker.state(1.0) == CLOSED  # below threshold
        breaker.on_failure(1.0)
        assert breaker.state(1.0) == OPEN
        assert breaker.allow(1.0) is False
        assert breaker.opens == 1

    def test_a_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(threshold=3, cooldown=0.05)
        breaker.on_failure(1.0)
        breaker.on_failure(1.0)
        breaker.on_success(1.0)
        breaker.on_failure(1.0)
        assert breaker.state(1.0) == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.on_failure(1.0)
        assert breaker.state(1.04) == OPEN
        assert breaker.state(1.05) == HALF_OPEN
        assert breaker.allow(1.05) is True  # the probe
        assert breaker.allow(1.05) is False  # everyone else keeps waiting

    def test_probe_success_closes_the_breaker(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.on_failure(1.0)
        assert breaker.allow(1.06) is True
        breaker.on_success(1.07)
        assert breaker.state(1.07) == CLOSED
        assert breaker.allow(1.07) is True

    def test_probe_failure_restarts_the_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.on_failure(1.0)
        assert breaker.allow(1.06) is True
        breaker.on_failure(1.06)
        assert breaker.state(1.07) == OPEN  # cooldown restarted at 1.06
        assert breaker.state(1.12) == HALF_OPEN
        assert breaker.opens == 2


class TestRetryBudget:
    def test_initial_grace_allows_cold_start_hedges(self):
        budget = RetryBudget(ratio=0.1, cap=10.0, initial=2.0)
        assert budget.try_spend() is True
        assert budget.try_spend() is True
        assert budget.try_spend() is False
        assert budget.denied == 1

    def test_primary_traffic_earns_tokens_at_the_ratio(self):
        budget = RetryBudget(ratio=0.1, cap=10.0, initial=0.0)
        assert budget.try_spend() is False
        for _ in range(11):
            budget.on_request()
        assert budget.try_spend() is True  # 11 * 0.1 accumulates past 1 token
        assert budget.try_spend() is False

    def test_tokens_are_capped(self):
        budget = RetryBudget(ratio=1.0, cap=3.0, initial=0.0)
        for _ in range(100):
            budget.on_request()
        assert budget.tokens == 3.0

    def test_spend_never_exceeds_earnings_plus_grace(self):
        # The storm-arrester invariant the seeded sweeps check end-to-end:
        # duplicates are bounded by ratio * primaries + the initial grace.
        budget = RetryBudget(ratio=0.1, cap=10.0, initial=3.0)
        spent = 0
        for index in range(500):
            budget.on_request()
            if index % 2 == 0 and budget.try_spend():
                spent += 1
        assert spent == budget.spent
        assert budget.spent <= budget.initial + budget.deposits * budget.ratio
        assert budget.tokens >= 0.0

    def test_reset_restores_the_grace(self):
        budget = RetryBudget(ratio=0.1, cap=10.0, initial=1.0)
        assert budget.try_spend() is True
        budget.reset()
        assert budget.tokens == 1.0
        assert budget.spent == 0
