"""Unit tests for phi-accrual suspicion from heartbeat arrivals."""

from repro.resilience import PeerHealth


class TestPhi:
    def test_no_arrivals_means_no_evidence(self):
        health = PeerHealth()
        assert health.phi(now=100.0) == 0.0

    def test_phi_is_near_zero_right_after_an_arrival(self):
        health = PeerHealth(expected_interval=0.02)
        health.heartbeat(1.0)
        assert health.phi(1.0) == 0.0
        assert health.phi(1.001) < 0.1

    def test_phi_grows_with_silence(self):
        health = PeerHealth(expected_interval=0.02)
        health.heartbeat(1.0)
        earlier = health.phi(1.05)
        later = health.phi(1.5)
        assert later > earlier > 0.0

    def test_phi_scale_matches_the_accrual_formula(self):
        # phi == 1 after ~2.3 mean intervals of silence (log10(e) * 2.303 = 1).
        health = PeerHealth(expected_interval=0.02)
        for at in (0.0, 0.02, 0.04, 0.06):
            health.heartbeat(at)
        assert health.phi(0.06 + 2.303 * 0.02) > 0.99
        assert health.phi(0.06 + 0.02) < 0.5

    def test_learned_interval_overrides_the_prior(self):
        # A peer heartbeating every 0.1s (5x the configured prior) must not be
        # suspected after 0.2s of silence — that is only two of *its* intervals.
        health = PeerHealth(expected_interval=0.02)
        for index in range(10):
            health.heartbeat(index * 0.1)
        assert health.mean_interval is not None
        assert abs(health.mean_interval - 0.1) < 1e-9
        assert health.phi(0.9 + 0.2) < 1.0

    def test_reset_forgets_the_peer(self):
        health = PeerHealth()
        health.heartbeat(1.0)
        health.heartbeat(1.02)
        health.reset()
        assert health.arrivals == 0
        assert health.phi(5.0) == 0.0
