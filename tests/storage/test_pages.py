"""Tests for index pages, coordinator records and page layout helpers."""

import pytest

from repro.common.hashing import KEY_SPACE_SIZE, ranges_partition_ring
from repro.common.types import TupleId
from repro.storage.pages import (
    CoordinatorRecord,
    IndexPage,
    PageId,
    catalog_key,
    choose_page_count,
    coordinator_key,
    initial_page_layout,
    inverse_key,
)


class TestPageLayout:
    def test_layout_partitions_ring(self):
        refs = initial_page_layout("R", 1, 8)
        assert len(refs) == 8
        assert ranges_partition_ring([ref.hash_range for ref in refs])

    def test_single_page_covers_ring(self):
        (ref,) = initial_page_layout("R", 1, 1)
        assert ref.hash_range.size() == KEY_SPACE_SIZE

    def test_invalid_page_count(self):
        with pytest.raises(ValueError):
            initial_page_layout("R", 1, 0)

    def test_page_ids_are_sequenced(self):
        refs = initial_page_layout("R", 3, 4)
        assert [ref.page_id.sequence for ref in refs] == [0, 1, 2, 3]
        assert all(ref.page_id.epoch == 3 for ref in refs)

    def test_storage_key_is_range_midpoint(self):
        refs = initial_page_layout("R", 1, 4)
        for ref in refs:
            assert ref.hash_range.contains(ref.storage_key)
            assert ref.storage_key == ref.hash_range.midpoint()

    def test_choose_page_count_by_capacity(self):
        # Capacity asks for 10 pages; rounded up to a multiple of the node
        # count so page ranges nest inside node ranges (co-location).
        assert choose_page_count(10_000, num_nodes=4, page_capacity=1000) == 12

    def test_choose_page_count_at_least_one_per_node(self):
        assert choose_page_count(10, num_nodes=16, page_capacity=1000) == 16

    def test_choose_page_count_minimum_one(self):
        assert choose_page_count(0, num_nodes=1, page_capacity=1000) == 1

    def test_choose_page_count_is_multiple_of_node_count(self):
        for nodes in (1, 2, 3, 5, 7, 16):
            for tuples in (0, 100, 5_000, 50_000):
                assert choose_page_count(tuples, num_nodes=nodes, page_capacity=1000) % nodes == 0

    def test_page_ranges_nest_inside_balanced_node_ranges(self):
        # With a page count that is a multiple of the node count, every page
        # range lies entirely inside exactly one node's balanced range.
        from repro.overlay.allocation import BalancedAllocation

        addresses = [f"node-{i}" for i in range(5)]
        allocation = BalancedAllocation().allocate(addresses)
        refs = initial_page_layout("R", 1, choose_page_count(9_000, 5, page_capacity=1000))
        for ref in refs:
            owners = [
                address for address, node_range in allocation.items()
                if node_range.contains(ref.hash_range.start)
                and node_range.contains(ref.hash_range.midpoint())
                and (node_range.contains(ref.hash_range.end)
                     or ref.hash_range.end == node_range.end)
            ]
            assert owners, f"page {ref} straddles node boundaries"


class TestIndexPage:
    def make_page(self):
        (ref,) = initial_page_layout("R", 1, 1)
        ids = [TupleId((f"k{i}",), 1) for i in range(5)]
        return IndexPage(ref, sorted(ids, key=lambda t: t.hash_key))

    def test_accessors(self):
        page = self.make_page()
        assert page.page_id.relation == "R"
        assert page.min_hash() == page.hash_range.start
        assert page.max_hash() == page.hash_range.end
        assert page.estimated_size() > 64

    def test_with_changes_adds_and_removes(self):
        page = self.make_page()
        old = page.tuple_ids[0]
        new = TupleId(old.key_values, 2)
        updated = page.with_changes(2, sequence=0, inserts=[new], removals=[old])
        assert new in updated.tuple_ids
        assert old not in updated.tuple_ids
        assert updated.page_id.epoch == 2
        assert updated.hash_range == page.hash_range
        # the original page is unchanged (pages are immutable versions)
        assert old in page.tuple_ids

    def test_with_changes_keeps_sorted_order(self):
        page = self.make_page()
        new_ids = [TupleId((f"new{i}",), 2) for i in range(3)]
        updated = page.with_changes(2, 0, inserts=new_ids)
        hashes = [tid.hash_key for tid in updated.tuple_ids]
        assert hashes == sorted(hashes)


class TestCoordinatorRecord:
    def test_page_for_hash(self):
        refs = initial_page_layout("R", 1, 4)
        record = CoordinatorRecord("R", 1, refs)
        for i in range(50):
            tid = TupleId((f"k{i}",), 1)
            ref = record.page_for_hash(tid.hash_key)
            assert ref.hash_range.contains(tid.hash_key)

    def test_page_for_hash_missing(self):
        record = CoordinatorRecord("R", 1, [])
        with pytest.raises(LookupError):
            record.page_for_hash(123)

    def test_estimated_size_scales_with_pages(self):
        small = CoordinatorRecord("R", 1, initial_page_layout("R", 1, 2))
        large = CoordinatorRecord("R", 1, initial_page_layout("R", 1, 20))
        assert large.estimated_size() > small.estimated_size()


class TestPlacementKeys:
    def test_coordinator_key_depends_on_epoch(self):
        assert coordinator_key("R", 1) != coordinator_key("R", 2)
        assert coordinator_key("R", 1) != coordinator_key("S", 1)

    def test_catalog_key_is_stable(self):
        assert catalog_key("R") == catalog_key("R")

    def test_inverse_key_matches_tuple_hash(self):
        assert inverse_key("R", ("a",)) == TupleId(("a",), 7).hash_key

    def test_page_id_ordering(self):
        assert PageId("R", 1, 0) < PageId("R", 1, 1) < PageId("R", 2, 0)

    def test_page_ref_size(self):
        (ref,) = initial_page_layout("R", 1, 1)
        assert ref.estimated_size() > 0
