"""Integration tests for the distributed versioned storage layer.

These tests drive the full publish / retrieve protocols over a simulated
cluster, including the paper's running example (Example 4.1 / 4.2) and the
snapshot-consistency guarantees of Section IV.
"""

import pytest

from repro.cluster import Cluster, build_cluster
from repro.common.errors import RelationNotFoundError, EpochNotFoundError
from repro.common.types import RelationData, Schema
from repro.storage.client import UpdateBatch


def relation_r(rows):
    data = RelationData(Schema("R", ["x", "y"], key=["x"]))
    data.extend(rows)
    return data


class TestPublishRetrieve:
    def test_publish_and_retrieve_round_trip(self):
        cluster = Cluster(4)
        data = relation_r([(f"k{i}", i) for i in range(200)])
        cluster.publish(data)
        result = cluster.retrieve("R")
        assert sorted(result.rows()) == sorted(data.rows)
        assert result.resolved_epoch == 1
        assert result.pages_scanned >= 4

    def test_retrieve_with_key_predicate(self):
        cluster = Cluster(4)
        cluster.publish(relation_r([(f"k{i}", i) for i in range(100)]))
        result = cluster.retrieve("R", key_predicate=lambda key: key[0] in {"k1", "k2", "k3"})
        assert sorted(result.rows()) == [("k1", 1), ("k2", 2), ("k3", 3)]

    def test_retrieve_from_any_node(self):
        cluster = Cluster(5)
        cluster.publish(relation_r([(f"k{i}", i) for i in range(50)]))
        for address in cluster.addresses:
            result = cluster.retrieve("R", from_address=address)
            assert len(result.tuples) == 50

    def test_unknown_relation_raises(self):
        cluster = Cluster(3)
        cluster.publish(relation_r([("a", 1)]))
        with pytest.raises(RelationNotFoundError):
            cluster.retrieve("NotPublished")

    def test_epoch_before_first_publish_raises(self):
        cluster = Cluster(3)
        cluster.publish(relation_r([("a", 1)]), epoch=5)
        with pytest.raises(EpochNotFoundError):
            cluster.retrieve("R", epoch=2)

    def test_single_node_cluster(self):
        cluster = Cluster(1, replication_factor=3)
        cluster.publish(relation_r([("a", 1), ("b", 2)]))
        assert sorted(cluster.retrieve("R").rows()) == [("a", 1), ("b", 2)]

    def test_multiple_relations_same_epoch(self):
        cluster = Cluster(4)
        r = relation_r([("a", 1)])
        s = RelationData(Schema("S", ["u", "v"], key=["u"]))
        s.add("x", 10)
        epoch = cluster.publish_relations([r, s])
        assert len(cluster.retrieve("R", epoch=epoch).tuples) == 1
        assert len(cluster.retrieve("S", epoch=epoch).tuples) == 1

    def test_publish_distributes_data_across_nodes(self):
        cluster = Cluster(8, replication_factor=1)
        cluster.publish(relation_r([(f"key-{i}", i) for i in range(400)]))
        counts = [cluster.storage(a).tuple_count() for a in cluster.addresses]
        assert sum(counts) == 400
        # Balanced allocation: no node should hold a wildly disproportionate share.
        assert max(counts) < 400 * 0.5

    def test_replication_factor_copies(self):
        cluster = Cluster(5, replication_factor=3)
        cluster.publish(relation_r([(f"k{i}", i) for i in range(100)]))
        total = sum(cluster.storage(a).tuple_count() for a in cluster.addresses)
        assert total == 100 * 3

    def test_build_cluster_helper(self):
        cluster = build_cluster(3, relations=[relation_r([("a", 1)])])
        assert cluster.retrieve("R").rows() == [("a", 1)]


class TestVersioning:
    def test_modifications_create_new_version(self):
        cluster = Cluster(4)
        cluster.publish(relation_r([("a", 1), ("b", 2)]), epoch=1)
        batch = UpdateBatch(
            schema=Schema("R", ["x", "y"], key=["x"]),
            modifications=[("a", 100)],
        )
        cluster.publish(batch, epoch=2)

        at_epoch_1 = cluster.retrieve("R", epoch=1)
        at_epoch_2 = cluster.retrieve("R", epoch=2)
        assert sorted(at_epoch_1.rows()) == [("a", 1), ("b", 2)]
        assert sorted(at_epoch_2.rows()) == [("a", 100), ("b", 2)]

    def test_inserts_at_later_epoch(self):
        cluster = Cluster(4)
        cluster.publish(relation_r([("a", 1)]), epoch=1)
        cluster.publish(
            UpdateBatch(Schema("R", ["x", "y"], key=["x"]), inserts=[("b", 2), ("c", 3)]),
            epoch=2,
        )
        assert len(cluster.retrieve("R", epoch=1).tuples) == 1
        assert len(cluster.retrieve("R", epoch=2).tuples) == 3

    def test_deletes(self):
        cluster = Cluster(4)
        cluster.publish(relation_r([("a", 1), ("b", 2), ("c", 3)]), epoch=1)
        cluster.publish(
            UpdateBatch(Schema("R", ["x", "y"], key=["x"]), deletes=[("b",)]), epoch=2
        )
        assert sorted(cluster.retrieve("R", epoch=2).rows()) == [("a", 1), ("c", 3)]
        assert sorted(cluster.retrieve("R", epoch=1).rows()) == [("a", 1), ("b", 2), ("c", 3)]

    def test_query_at_intermediate_epoch_resolves_to_latest_published(self):
        cluster = Cluster(4)
        cluster.publish(relation_r([("a", 1)]), epoch=1)
        cluster.publish(
            UpdateBatch(Schema("R", ["x", "y"], key=["x"]), inserts=[("b", 2)]), epoch=5
        )
        # Epoch 3 sees the version published at epoch 1.
        result = cluster.retrieve("R", epoch=3)
        assert result.resolved_epoch == 1
        assert sorted(result.rows()) == [("a", 1)]

    def test_unchanged_pages_are_shared_between_versions(self):
        cluster = Cluster(4, page_capacity=64)
        cluster.publish(relation_r([(f"k{i}", i) for i in range(256)]), epoch=1)
        cluster.publish(
            UpdateBatch(Schema("R", ["x", "y"], key=["x"]), modifications=[("k0", 999)]),
            epoch=2,
        )
        record_1 = None
        record_2 = None
        for address in cluster.addresses:
            record_1 = record_1 or cluster.storage(address).local_coordinator("R", 1)
            record_2 = record_2 or cluster.storage(address).local_coordinator("R", 2)
        assert record_1 is not None and record_2 is not None
        pages_1 = {ref.page_id for ref in record_1.pages}
        pages_2 = {ref.page_id for ref in record_2.pages}
        shared = pages_1 & pages_2
        # Only the page containing k0 should differ; every other page is reused.
        assert len(shared) >= len(pages_1) - 1
        assert pages_1 != pages_2

    def test_epoch_gossip_reaches_all_nodes(self):
        cluster = Cluster(5)
        cluster.publish(relation_r([("a", 1)]))
        assert all(
            cluster.node(address).gossip.current_epoch == cluster.current_epoch
            for address in cluster.addresses
        )

    def test_tuple_ids_carry_modification_epoch(self):
        cluster = Cluster(3)
        cluster.publish(relation_r([("f", "z")]), epoch=1)
        cluster.publish(
            UpdateBatch(Schema("R", ["x", "y"], key=["x"]), modifications=[("f", "a")]),
            epoch=2,
        )
        result = cluster.retrieve("R", epoch=2)
        (tup,) = result.tuples
        assert tup.tuple_id.epoch == 2
        assert tup.tuple_id.key_values == ("f",)


class TestPaperExample:
    """Example 4.1 / 4.2 from the paper: three epochs of changes to R(x, y)."""

    def build(self):
        cluster = Cluster(3, replication_factor=1)
        schema = Schema("R", ["x", "y"], key=["x"])
        # Epoch 0 in the paper is our epoch 1 (epochs here start at 1).
        cluster.publish(
            UpdateBatch(schema, inserts=[("a", "b"), ("f", "z")]), epoch=1
        )
        cluster.publish(
            UpdateBatch(
                schema,
                inserts=[("b", "c"), ("e", "e"), ("c", "f")],
                modifications=[("f", "a")],
            ),
            epoch=2,
        )
        cluster.publish(UpdateBatch(schema, inserts=[("d", "d")]), epoch=3)
        return cluster

    def test_final_state(self):
        cluster = self.build()
        result = cluster.retrieve("R", epoch=3)
        assert sorted(result.rows()) == [
            ("a", "b"), ("b", "c"), ("c", "f"), ("d", "d"), ("e", "e"), ("f", "a"),
        ]

    def test_lookup_at_epoch_two(self):
        # Figure 5: the lookup of R at epoch 2 must see f's *new* version and
        # not include d (inserted later).
        cluster = self.build()
        result = cluster.retrieve("R", epoch=2)
        rows = dict(result.rows())
        assert rows["f"] == "a"
        assert "d" not in rows
        assert len(rows) == 5

    def test_lookup_at_epoch_one(self):
        cluster = self.build()
        result = cluster.retrieve("R", epoch=1)
        assert sorted(result.rows()) == [("a", "b"), ("f", "z")]

    def test_stale_version_never_returned(self):
        # The superseded tuple ⟨f, 0⟩ remains in storage (full versioning) but
        # must never be returned for epoch ≥ 2.
        cluster = self.build()
        stored_versions = []
        for address in cluster.addresses:
            for tup in cluster.storage(address).all_local_tuples("R"):
                if tup.tuple_id.key_values == ("f",):
                    stored_versions.append(tup.tuple_id.epoch)
        assert set(stored_versions) == {1, 2}
        result = cluster.retrieve("R", epoch=3)
        f_rows = [row for row in result.rows() if row[0] == "f"]
        assert f_rows == [("f", "a")]


class TestFailureTolerance:
    def test_retrieve_after_single_node_failure(self):
        cluster = Cluster(5, replication_factor=3)
        cluster.publish(relation_r([(f"k{i}", i) for i in range(150)]))
        cluster.fail_node(cluster.addresses[2])
        cluster.run()
        result = cluster.retrieve("R", from_address=cluster.addresses[0])
        assert len(result.tuples) == 150

    def test_retrieve_after_two_node_failures(self):
        cluster = Cluster(6, replication_factor=3)
        cluster.publish(relation_r([(f"k{i}", i) for i in range(150)]))
        cluster.fail_node(cluster.addresses[1])
        cluster.fail_node(cluster.addresses[4])
        cluster.run()
        result = cluster.retrieve("R", from_address=cluster.addresses[0])
        assert len(result.tuples) == 150

    def test_background_replication_repairs_new_node_ranges(self):
        cluster = Cluster(5, replication_factor=2)
        cluster.publish(relation_r([(f"k{i}", i) for i in range(100)]))
        report = cluster.run_background_replication()
        # Already fully replicated immediately after publish.
        assert report.items_copied == 0

    def test_traffic_is_generated_by_publish_and_retrieve(self):
        cluster = Cluster(4)
        before = cluster.traffic_snapshot()
        cluster.publish(relation_r([(f"k{i}", "x" * 50) for i in range(100)]))
        after_publish = cluster.traffic_snapshot()
        cluster.retrieve("R")
        after_retrieve = cluster.traffic_snapshot()
        assert before.delta(after_publish).total_bytes > 0
        assert after_publish.delta(after_retrieve).total_bytes > 0
