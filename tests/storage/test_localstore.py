"""Tests for the local B+-tree store (BerkeleyDB substitute)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.localstore import BPlusTree, LocalStore


class TestBPlusTreeBasics:
    def test_put_and_get(self):
        tree = BPlusTree()
        tree.put(5, "five")
        tree.put(3, "three")
        assert tree.get(5) == "five"
        assert tree.get(3) == "three"
        assert tree.get(99) is None
        assert tree.get(99, "default") == "default"

    def test_overwrite(self):
        tree = BPlusTree()
        tree.put(1, "a")
        tree.put(1, "b")
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_contains_and_len(self):
        tree = BPlusTree()
        for i in range(10):
            tree.put(i, i)
        assert len(tree) == 10
        assert 5 in tree
        assert 50 not in tree

    def test_delete(self):
        tree = BPlusTree()
        tree.put(1, "a")
        assert tree.delete(1)
        assert not tree.delete(1)
        assert 1 not in tree
        assert len(tree) == 0

    def test_minimum_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_first(self):
        tree = BPlusTree()
        assert tree.first() is None
        tree.put(10, "ten")
        tree.put(2, "two")
        assert tree.first() == (2, "two")

    def test_items_in_order_after_many_inserts(self):
        tree = BPlusTree(order=8)
        import random
        rng = random.Random(7)
        keys = list(range(2000))
        rng.shuffle(keys)
        for key in keys:
            tree.put(key, key * 2)
        assert [k for k, _ in tree.items()] == list(range(2000))
        assert all(v == k * 2 for k, v in tree.items())

    def test_tuple_keys(self):
        tree = BPlusTree()
        tree.put(("r", 2), "a")
        tree.put(("r", 1), "b")
        tree.put(("q", 9), "c")
        assert [k for k, _ in tree.items()] == [("q", 9), ("r", 1), ("r", 2)]


class TestBPlusTreeRangeScan:
    def make_tree(self, n=500, order=16):
        tree = BPlusTree(order=order)
        for i in range(n):
            tree.put(i, f"v{i}")
        return tree

    def test_range_scan_half_open(self):
        tree = self.make_tree()
        result = [k for k, _ in tree.range_scan(10, 20)]
        assert result == list(range(10, 20))

    def test_range_scan_inclusive(self):
        tree = self.make_tree()
        result = [k for k, _ in tree.range_scan(10, 20, include_high=True)]
        assert result == list(range(10, 21))

    def test_range_scan_unbounded_low(self):
        tree = self.make_tree(50)
        assert [k for k, _ in tree.range_scan(None, 5)] == [0, 1, 2, 3, 4]

    def test_range_scan_unbounded_high(self):
        tree = self.make_tree(50)
        assert [k for k, _ in tree.range_scan(45, None)] == [45, 46, 47, 48, 49]

    def test_range_scan_empty_range(self):
        tree = self.make_tree(50)
        assert list(tree.range_scan(30, 30)) == []

    def test_range_scan_missing_bounds(self):
        tree = BPlusTree()
        for i in range(0, 100, 10):
            tree.put(i, i)
        assert [k for k, _ in tree.range_scan(15, 45)] == [20, 30, 40]

    @given(
        keys=st.lists(st.integers(-10_000, 10_000), unique=True, max_size=300),
        low=st.integers(-10_000, 10_000),
        high=st.integers(-10_000, 10_000),
    )
    @settings(max_examples=50)
    def test_range_scan_matches_sorted_filter(self, keys, low, high):
        tree = BPlusTree(order=8)
        for key in keys:
            tree.put(key, key)
        expected = sorted(k for k in keys if low <= k < high)
        assert [k for k, _ in tree.range_scan(low, high)] == expected

    @given(keys=st.lists(st.integers(), unique=True, max_size=400))
    @settings(max_examples=50)
    def test_items_sorted_property(self, keys):
        tree = BPlusTree(order=6)
        for key in keys:
            tree.put(key, str(key))
        result = [k for k, _ in tree.items()]
        assert result == sorted(keys)
        assert len(tree) == len(keys)

    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["put", "delete"]), st.integers(0, 50)),
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_matches_dict_model(self, operations):
        tree = BPlusTree(order=5)
        model = {}
        for op, key in operations:
            if op == "put":
                tree.put(key, key)
                model[key] = key
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert dict(tree.items()) == model
        assert len(tree) == len(model)


class TestLocalStore:
    def test_named_trees_are_isolated(self):
        store = LocalStore()
        store.put("a", 1, "x")
        store.put("b", 1, "y")
        assert store.get("a", 1) == "x"
        assert store.get("b", 1) == "y"
        assert store.count("a") == 1

    def test_bytes_stored_accumulates(self):
        store = LocalStore()
        store.put("t", 1, "v", size=100)
        store.put("t", 2, "w", size=50)
        assert store.bytes_stored == 150

    def test_contains_and_delete(self):
        store = LocalStore()
        store.put("t", "k", "v")
        assert store.contains("t", "k")
        assert store.delete("t", "k")
        assert not store.contains("t", "k")

    def test_filter_items(self):
        store = LocalStore()
        for i in range(10):
            store.put("t", i, i * i)
        evens = store.filter_items("t", lambda k, v: k % 2 == 0)
        assert len(evens) == 5

    def test_range_scan_delegates(self):
        store = LocalStore()
        for i in range(10):
            store.put("t", i, i)
        assert [k for k, _ in store.range_scan("t", 2, 5)] == [2, 3, 4]


class TestByteAccounting:
    def test_replacing_an_entry_does_not_double_count(self):
        store = LocalStore()
        store.put("t", "k", "v1", size=100)
        store.put("t", "k", "v2", size=120)
        assert store.bytes_stored == 120

    def test_replacing_with_a_smaller_entry_shrinks(self):
        store = LocalStore()
        store.put("t", "k", "v1", size=100)
        store.put("t", "k", "v2", size=40)
        assert store.bytes_stored == 40

    def test_delete_releases_the_entry_bytes(self):
        store = LocalStore()
        store.put("t", "a", "v", size=100)
        store.put("t", "b", "w", size=50)
        store.delete("t", "a")
        assert store.bytes_stored == 50
        store.delete("t", "b")
        assert store.bytes_stored == 0

    def test_churned_entry_returns_to_zero(self):
        # The regression: replace + delete used to leave bytes_stored
        # drifting upward by one stale size per overwrite.
        store = LocalStore()
        for round_trip in range(10):
            store.put("t", "k", f"v{round_trip}", size=100 + round_trip)
        store.delete("t", "k")
        assert store.bytes_stored == 0

    def test_same_key_in_different_trees_counts_both(self):
        store = LocalStore()
        store.put("a", "k", "v", size=10)
        store.put("b", "k", "v", size=20)
        assert store.bytes_stored == 30
        store.delete("a", "k")
        assert store.bytes_stored == 20


class TestChecksumTable:
    def test_checksum_round_trip(self):
        store = LocalStore()
        store.put("t", "k", "v", size=10)
        store.set_checksum("t", "k", 0xDEAD)
        assert store.get_checksum("t", "k") == 0xDEAD
        assert store.get_checksum("t", "other") is None

    def test_delete_drops_the_checksum(self):
        store = LocalStore()
        store.put("t", "k", "v", size=10)
        store.set_checksum("t", "k", 7)
        store.delete("t", "k")
        assert store.get_checksum("t", "k") is None
