"""NodeIntegrity: record, verify, quarantine, and repair attribution."""

import random
from types import SimpleNamespace

from repro.common.types import TupleId, VersionedTuple
from repro.integrity import IntegrityConfig, NodeIntegrity, corrupted_tuple
from repro.storage.localstore import LocalStore

TREE = "tuples"


def make_tuple(i=0):
    return VersionedTuple("rel", TupleId((f"key-{i}",), epoch=1), (f"key-{i}", i))


def stub_node(now=1.5):
    # Enough of a simulated node for detection timestamps; no tracer.
    return SimpleNamespace(now=now, address="node-0", network=SimpleNamespace())


def make_state(config=None):
    store = LocalStore()
    integrity = NodeIntegrity(config or IntegrityConfig())
    tup = make_tuple()
    store.put(TREE, "k", tup, size=64)
    integrity.record(store, TREE, "k", tup)
    return store, integrity, tup


class TestVerify:
    def test_intact_entry_passes(self):
        store, integrity, tup = make_state()
        assert integrity.verify(store, TREE, "k", tup, "tuple")
        assert integrity.stats.detected_total == 0

    def test_unchecked_entry_passes(self):
        # Written before the integrity layer was enabled: no recorded CRC.
        store, integrity, _ = make_state()
        other = make_tuple(1)
        store.put(TREE, "k2", other, size=64)
        assert integrity.verify(store, TREE, "k2", other, "tuple")

    def test_corrupt_entry_fails_and_quarantines(self):
        store, integrity, tup = make_state()
        rotten = corrupted_tuple(tup, random.Random(0))
        # Swap behind the bookkeeping, the way the injector does: the
        # recorded CRC still describes the original bytes.
        store.tree(TREE).put("k", rotten)
        assert not integrity.verify(store, TREE, "k", rotten, "tuple",
                                    node=stub_node(now=2.5))
        assert integrity.stats.detected == {"tuple": 1}
        assert integrity.stats.quarantined == 1
        assert (TREE, "k") in integrity.quarantined
        assert integrity.detection_times[(TREE, "k")] == 2.5
        # The local copy is failed loudly and removed so the replica-chase
        # read path back-fills a verified one.
        assert store.get(TREE, "k") is None
        assert store.get_checksum(TREE, "k") is None

    def test_verify_reads_disabled_skips(self):
        store, integrity, tup = make_state(IntegrityConfig(verify_reads=False))
        rotten = corrupted_tuple(tup, random.Random(0))
        store.tree(TREE).put("k", rotten)
        assert integrity.verify(store, TREE, "k", rotten, "tuple")
        assert integrity.stats.detected_total == 0


class TestRepairAttribution:
    def _quarantine(self, store, integrity, tup):
        rotten = corrupted_tuple(tup, random.Random(0))
        store.tree(TREE).put("k", rotten)
        assert not integrity.verify(store, TREE, "k", rotten, "tuple")

    def test_restore_counts_as_failover_repair(self):
        store, integrity, tup = make_state()
        self._quarantine(store, integrity, tup)
        store.put(TREE, "k", tup, size=64)
        integrity.record(store, TREE, "k", tup)
        assert integrity.stats.repaired == {"failover": 1}
        assert not integrity.quarantined

    def test_repair_source_attributes_scrub(self):
        store, integrity, tup = make_state()
        self._quarantine(store, integrity, tup)
        integrity.repair_source = "scrub"
        store.put(TREE, "k", tup, size=64)
        integrity.record(store, TREE, "k", tup)
        assert integrity.stats.repaired == {"scrub": 1}

    def test_fresh_write_is_not_a_repair(self):
        store, integrity, tup = make_state()
        integrity.record(store, TREE, "k", tup)
        assert integrity.stats.repaired_total == 0

    def test_repeated_detection_timestamps_keep_the_first(self):
        store, integrity, tup = make_state()
        rotten = corrupted_tuple(tup, random.Random(0))
        store.tree(TREE).put("k", rotten)
        integrity.verify(store, TREE, "k", rotten, "tuple", node=stub_node(1.0))
        store.tree(TREE).put("k", rotten)
        store.set_checksum(TREE, "k", 123)  # re-recorded, still rotten
        integrity.verify(store, TREE, "k", rotten, "tuple", node=stub_node(9.0))
        assert integrity.detection_times[(TREE, "k")] == 1.0


class TestVerifyCached:
    def test_matching_fill_checksum_passes(self):
        integrity = NodeIntegrity(IntegrityConfig())
        tup = make_tuple()
        from repro.integrity import checksum_of

        assert integrity.verify_cached(checksum_of(tup), tup)
        assert integrity.stats.detected_total == 0

    def test_mismatch_is_detected_at_the_cache_site(self):
        integrity = NodeIntegrity(IntegrityConfig())
        tup = make_tuple()
        rotten = corrupted_tuple(tup, random.Random(0))
        from repro.integrity import checksum_of

        assert not integrity.verify_cached(checksum_of(tup), rotten)
        assert integrity.stats.detected == {"cache": 1}

    def test_uncached_checksum_passes(self):
        integrity = NodeIntegrity(IntegrityConfig())
        assert integrity.verify_cached(None, make_tuple())

    def test_verify_cache_disabled_skips(self):
        integrity = NodeIntegrity(IntegrityConfig(verify_cache=False))
        rotten = corrupted_tuple(make_tuple(), random.Random(0))
        from repro.integrity import checksum_of

        assert integrity.verify_cached(checksum_of(make_tuple()), rotten)
        assert integrity.stats.detected_total == 0
