"""Content checksums: equal content, equal CRC; any mutation, a different one."""

import random

from repro.common.hashing import KeyRange
from repro.common.serialization import EncodedScanBatch
from repro.common.types import TupleId, VersionedTuple
from repro.integrity import (
    checksum_of,
    corrupt_value,
    corrupted_page,
    corrupted_record,
    corrupted_scan_batch,
    corrupted_tuple,
    page_checksum,
    record_checksum,
    scan_batch_checksum,
    tuple_checksum,
)
from repro.storage.pages import CoordinatorRecord, IndexPage, PageId, PageRef


def make_tuple(i=0, deleted=False):
    return VersionedTuple(
        "rel", TupleId((f"key-{i}",), epoch=1), (f"key-{i}", 3.25, i, b"\x00\x01"),
        deleted,
    )


def make_page(num_ids=5):
    ref = PageRef(PageId("rel", 1, 0), KeyRange(100, 5000))
    return IndexPage(ref, [TupleId((f"key-{i}",), epoch=1) for i in range(num_ids)])


def make_record(num_pages=3):
    pages = [
        PageRef(PageId("rel", 1, seq), KeyRange(seq * 1000, (seq + 1) * 1000))
        for seq in range(num_pages)
    ]
    return CoordinatorRecord("rel", 1, pages)


class TestChecksumStability:
    def test_equal_tuples_checksum_identically(self):
        assert tuple_checksum(make_tuple(7)) == tuple_checksum(make_tuple(7))

    def test_equal_pages_checksum_identically(self):
        assert page_checksum(make_page()) == page_checksum(make_page())

    def test_equal_records_checksum_identically(self):
        assert record_checksum(make_record()) == record_checksum(make_record())

    def test_equal_scan_batches_checksum_identically(self):
        first = EncodedScanBatch.from_tuples([make_tuple(i) for i in range(8)])
        second = EncodedScanBatch.from_tuples([make_tuple(i) for i in range(8)])
        assert scan_batch_checksum(first) == scan_batch_checksum(second)


class TestChecksumSensitivity:
    def test_value_mutation_changes_tuple_checksum(self):
        rng = random.Random(0)
        original = make_tuple()
        for _ in range(20):
            assert tuple_checksum(corrupted_tuple(original, rng)) != tuple_checksum(original)

    def test_deleted_flag_changes_tuple_checksum(self):
        assert tuple_checksum(make_tuple(deleted=True)) != tuple_checksum(make_tuple())

    def test_repointed_tuple_id_changes_page_checksum(self):
        rng = random.Random(0)
        original = make_page()
        for _ in range(20):
            assert page_checksum(corrupted_page(original, rng)) != page_checksum(original)

    def test_dropped_tuple_id_changes_page_checksum(self):
        original = make_page(5)
        truncated = IndexPage(original.ref, original.tuple_ids[:-1])
        assert page_checksum(truncated) != page_checksum(original)

    def test_repointed_page_ref_changes_record_checksum(self):
        rng = random.Random(0)
        original = make_record()
        for _ in range(20):
            assert record_checksum(corrupted_record(original, rng)) != record_checksum(original)

    def test_scan_batch_mutation_survives_reencoding(self):
        # The corrupted batch is re-encoded (structurally valid, content
        # wrong) — exactly the case a structural check would miss.
        rng = random.Random(0)
        original = EncodedScanBatch.from_tuples([make_tuple(i) for i in range(8)])
        for _ in range(10):
            mutated = corrupted_scan_batch(original, rng)
            assert scan_batch_checksum(mutated) != scan_batch_checksum(original)


class TestCorruptValue:
    def test_always_differs(self):
        rng = random.Random(1)
        samples = [True, 0, 12345, -7, 3.5, 0.0, "", "hello", b"", b"\xff\x00",
                   (1, "two"), None]
        for value in samples:
            for _ in range(10):
                assert corrupt_value(value, rng) != value


class TestDispatch:
    def test_dispatch_by_stored_type(self):
        batch = EncodedScanBatch.from_tuples([make_tuple()])
        assert checksum_of(make_tuple()) == tuple_checksum(make_tuple())
        assert checksum_of(make_page()) == page_checksum(make_page())
        assert checksum_of(make_record()) == record_checksum(make_record())
        assert checksum_of(batch) == scan_batch_checksum(batch)

    def test_unchecked_kinds_return_none(self):
        assert checksum_of(42) is None
        assert checksum_of("raw") is None
        assert checksum_of(None) is None
