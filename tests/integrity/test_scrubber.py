"""IntegrityScrubber unit tests: dict-backed stores, no simulator.

The scrubber is decoupled from the storage engine through callbacks (like
the BackgroundReplicator), so these tests model a replica group as plain
dicts: ``values[addr][key]`` is the content a member holds *now* (its fresh
checksum), ``recorded[addr][key]`` the CRC written beside it at store time,
and ``versions[addr][key]`` the copy's epoch.  Corruption = mutating
``values`` behind ``recorded``; divergence = self-consistent members that
disagree.
"""

from repro.common.hashing import sha1_key
from repro.integrity import DigestEntry, IntegrityScrubber
from repro.overlay.replication import replica_set
from repro.overlay.routing import RoutingTable

REPLICATION_FACTOR = 3
ITEM_SIZE = 10


class ScrubHarness:
    def __init__(self, num_nodes=5, num_items=60):
        self.snapshot = RoutingTable(
            [f"node-{i}" for i in range(num_nodes)]
        ).snapshot()
        addresses = [f"node-{i}" for i in range(num_nodes)]
        self.values = {a: {} for a in addresses}
        self.recorded = {a: {} for a in addresses}
        self.versions = {a: {} for a in addresses}
        self.quarantined = []
        self.items = []
        for i in range(num_items):
            key = sha1_key(("item", i))
            self.items.append(key)
            for member in replica_set(self.snapshot, key, REPLICATION_FACTOR):
                self.put(member, key, content=i)

    def put(self, address, key, content, version=1):
        self.values[address][key] = content
        self.recorded[address][key] = content
        self.versions[address][key] = version

    def corrupt(self, address, key):
        """Flip the content behind the recorded CRC (at-rest corruption)."""
        self.values[address][key] ^= 1

    def holders(self, key):
        return sorted(a for a in self.values if key in self.values[a])

    def group(self, key):
        return replica_set(self.snapshot, key, REPLICATION_FACTOR)

    # -- scrubber callbacks ----------------------------------------------------

    def list_digests(self, address, key_range):
        return {
            key: DigestEntry(
                version=self.versions[address][key],
                checksum=self.values[address][key],
                stored=self.recorded[address].get(key),
                size=ITEM_SIZE,
            )
            for key in self.values[address]
            if key_range.contains(key)
        }

    def copy_item(self, src, dst, key):
        self.put(dst, key, self.values[src][key],
                 version=self.versions[src][key])
        return ITEM_SIZE

    def quarantine(self, address, key):
        self.quarantined.append((address, key))
        del self.values[address][key]
        self.recorded[address].pop(key, None)
        self.versions[address].pop(key, None)

    def scrubber(self):
        return IntegrityScrubber(
            REPLICATION_FACTOR, self.list_digests, self.copy_item,
            self.quarantine,
        )


class TestCleanGroup:
    def test_clean_round_finds_nothing(self):
        harness = ScrubHarness()
        report = harness.scrubber().run_round(harness.snapshot)
        assert report.corrupt_copies == 0
        assert report.divergent_keys == 0
        assert report.unrepairable == 0
        assert report.items_copied == 0
        assert not harness.quarantined

    def test_digest_byte_accounting(self):
        harness = ScrubHarness()
        scrubber = harness.scrubber()
        report = scrubber.run_round(harness.snapshot)
        assert report.digest_entries > 0
        assert report.digest_bytes == report.digest_entries * scrubber.digest_entry_bytes
        assert report.total_bytes == report.digest_bytes + report.bytes_copied


class TestCorruptCopy:
    def test_corrupt_copy_is_quarantined_and_backfilled(self):
        harness = ScrubHarness()
        key = harness.items[0]
        victim = harness.group(key)[1]
        harness.corrupt(victim, key)
        report = harness.scrubber().run_round(harness.snapshot)
        assert report.corrupt_copies == 1
        assert report.divergent_keys == 1
        assert (victim, key) in harness.quarantined
        # Back-filled from a verified member: the group agrees again.
        contents = {harness.values[a][key] for a in harness.group(key)}
        assert len(contents) == 1
        assert report.items_copied >= 1

    def test_second_round_is_idle(self):
        harness = ScrubHarness()
        harness.corrupt(harness.group(harness.items[3])[0], harness.items[3])
        scrubber = harness.scrubber()
        scrubber.run_round(harness.snapshot)
        second = scrubber.run_round(harness.snapshot)
        assert second.corrupt_copies == 0
        assert second.divergent_keys == 0
        assert second.items_copied == 0


class TestDivergence:
    def test_checksum_quorum_wins(self):
        # All copies self-verify (their recorded CRC matches what they hold)
        # but one member holds different content — a divergence the Bloom
        # exchange can never see, because the copy is *present*.
        harness = ScrubHarness()
        key = harness.items[1]
        minority = harness.group(key)[2]
        majority_content = harness.values[harness.group(key)[0]][key]
        harness.put(minority, key, content=majority_content ^ 4)
        report = harness.scrubber().run_round(harness.snapshot)
        assert report.divergent_keys == 1
        assert (minority, key) in harness.quarantined
        assert all(
            harness.values[a][key] == majority_content
            for a in harness.group(key)
        )

    def test_higher_version_beats_the_quorum(self):
        harness = ScrubHarness()
        key = harness.items[2]
        group = harness.group(key)
        newer_content = harness.values[group[0]][key] + 1000
        harness.put(group[0], key, content=newer_content, version=2)
        harness.scrubber().run_round(harness.snapshot)
        assert all(harness.values[a][key] == newer_content for a in group)
        assert all(harness.versions[a][key] == 2 for a in group)

    def test_exact_tie_resolves_deterministically(self):
        harness = ScrubHarness()
        key = harness.items[4]
        group = harness.group(key)
        base = harness.values[group[0]][key]
        # A 1-1 split (third copy removed): smallest checksum must win.
        harness.put(group[1], key, content=base + 8)
        if len(group) > 2:
            del harness.values[group[2]][key]
        first = ScrubHarness()
        first.put(group[1], key, content=base + 8)
        if len(group) > 2:
            del first.values[group[2]][key]
        harness.scrubber().run_round(harness.snapshot)
        first.scrubber().run_round(first.snapshot)
        assert harness.values[group[0]][key] == first.values[group[0]][key] == min(base, base + 8)


class TestUnrepairable:
    def test_no_verified_copy_is_left_in_place(self):
        harness = ScrubHarness()
        key = harness.items[5]
        group = harness.group(key)
        for member in group:
            harness.corrupt(member, key)
        report = harness.scrubber().run_round(harness.snapshot)
        assert report.unrepairable == 1
        # Left in place so reads fail loudly instead of vanishing the key.
        assert harness.holders(key) == sorted(group)
        assert not harness.quarantined


class TestMissingCopies:
    def test_absent_copy_is_backfilled_without_divergence(self):
        harness = ScrubHarness()
        key = harness.items[6]
        group = harness.group(key)
        del harness.values[group[1]][key]
        del harness.recorded[group[1]][key]
        del harness.versions[group[1]][key]
        report = harness.scrubber().run_round(harness.snapshot)
        assert key in harness.values[group[1]]
        assert report.divergent_keys == 0  # absence is not divergence
        assert report.items_copied >= 1
