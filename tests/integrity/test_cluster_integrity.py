"""Cluster-level integrity: detection end to end, scrub convergence,
exact reconciliation with the metrics registry, and query attribution."""

import pytest

from repro.bench.harness import _gray_relation
from repro.cluster import Cluster
from repro.common.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.integrity import IntegrityConfig
from repro.obs.metrics import format_series

NODES = 6
ROWS = 200


def integrity_cluster(seed=3, rows=ROWS):
    cluster = Cluster(NODES, integrity_config=IntegrityConfig())
    injector = FaultInjector(cluster.network, seed=seed)
    cluster.publish_relations([_gray_relation("R", rows)])
    cluster.run()
    return cluster, injector


def scrub_until_clean(cluster):
    rounds = 0
    for _ in range(cluster.integrity_config.max_scrub_rounds):
        report = cluster.run_scrub()
        rounds += 1
        if not (report.corrupt_copies or report.divergent_keys or report.items_copied):
            break
    return rounds


class TestEndToEnd:
    def test_injected_corruptions_detected_and_repaired_by_scrub(self):
        cluster, injector = integrity_cluster()
        for _ in range(5):
            injector.corrupt_at_rest()
        injected = len(injector.corruption_events)
        assert injected == 5
        scrub_until_clean(cluster)
        stats = cluster.integrity_statistics()
        assert stats.detected_total == injected
        assert stats.repaired_total == injected
        assert stats.unrepairable == 0
        assert cluster.quarantined_entries() == {}

    def test_retrieve_never_serves_corrupted_rows(self):
        cluster, injector = integrity_cluster(seed=9)
        for _ in range(4):
            injector.corrupt_at_rest()
        result = cluster.retrieve("R")
        expected = {f"R-{i:05d}": (f"R-{i:05d}", f"g{i % 7}", i) for i in range(ROWS)}
        rows = list(result.rows())
        assert len(rows) == ROWS
        for row in rows:
            assert tuple(row) == expected[row[0]]

    def test_scrub_requires_the_integrity_layer(self):
        cluster = Cluster(4)
        with pytest.raises(ReproError):
            cluster.run_scrub()

    def test_scrub_converges_within_configured_rounds(self):
        cluster, injector = integrity_cluster(seed=21)
        for _ in range(8):
            injector.corrupt_at_rest()
        rounds = scrub_until_clean(cluster)
        assert rounds <= cluster.integrity_config.max_scrub_rounds
        # A further round finds nothing: the repairs themselves verified.
        report = cluster.run_scrub()
        assert report.corrupt_copies == 0
        assert report.items_copied == 0


class TestMetricsReconciliation:
    def test_registry_equals_integrity_statistics_exactly(self):
        cluster, injector = integrity_cluster(seed=5)
        for _ in range(6):
            injector.corrupt_at_rest()
        cluster.retrieve("R")
        scrub_until_clean(cluster)
        stats = cluster.integrity_statistics()
        assert stats.detected_total > 0
        metrics = cluster.metrics.snapshot()
        for name, tags, value in stats.metric_series():
            assert metrics[format_series(name, tags)] == value

    def test_scrub_accounting_reaches_the_registry(self):
        cluster, injector = integrity_cluster(seed=7)
        injector.corrupt_at_rest()
        rounds = scrub_until_clean(cluster)
        metrics = cluster.metrics.snapshot()
        assert metrics["scrub.rounds"] == rounds
        assert metrics["scrub.digests"] > 0
        assert metrics["scrub.bytes"] > 0
        assert metrics["scrub.bytes"] == cluster.integrity_statistics().scrub_bytes

    def test_observability_surfaces_integrity_counters(self):
        cluster, injector = integrity_cluster(seed=11)
        injector.corrupt_at_rest()
        scrub_until_clean(cluster)
        observed = cluster.observability()["metrics"]
        assert any(key.startswith("integrity.detected") for key in observed)
        assert observed["scrub.rounds"] >= 1

    def test_integrity_off_emits_no_series(self):
        cluster = Cluster(4)
        cluster.publish_relations([_gray_relation("R", 50)])
        cluster.run()
        metrics = cluster.metrics.snapshot()
        assert not any(
            key.startswith(("integrity.", "scrub.")) for key in metrics
        )


class TestQueryAttribution:
    def test_query_statistics_carry_detections_in_its_window(self):
        from repro.workloads import tpch

        instance = tpch.generate(0.1, seed=0)
        cluster = Cluster(NODES, integrity_config=IntegrityConfig())
        injector = FaultInjector(cluster.network, seed=2)
        cluster.publish_relations(instance.relation_list())
        cluster.run()
        for _ in range(6):
            injector.corrupt_at_rest(targets=("tuples",))
        result = cluster.query(tpch.query("Q1"))
        integrity = result.statistics.integrity
        # Q1 scans lineitem (the bulk of the instance): at least one of the
        # corrupted tuples sits under the scan and is detected mid-query.
        assert sum(integrity.get("detected", {}).values()) > 0
        assert integrity.get("detected", {}) == {
            site: count
            for site, count in cluster.integrity_statistics().detected.items()
        }
        assert "integrity" in result.statistics.to_dict()

    def test_profile_renders_the_integrity_block(self):
        from repro.workloads import tpch

        instance = tpch.generate(0.1, seed=0)
        cluster = Cluster(NODES, integrity_config=IntegrityConfig())
        injector = FaultInjector(cluster.network, seed=4)
        cluster.publish_relations(instance.relation_list())
        cluster.enable_tracing()
        cluster.run()
        for _ in range(6):
            injector.corrupt_at_rest(targets=("tuples",))
        result = cluster.query(tpch.query("Q1"))
        statistics = result.statistics
        if sum(statistics.integrity.get("detected", {}).values()) == 0:
            pytest.skip("no corruption landed under this query's scan")
        text = statistics.profile().format()
        assert "integrity" in text
        assert "detected" in text
