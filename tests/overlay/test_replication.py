"""Tests for replica placement, Bloom filters and background replication."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import sha1_key
from repro.overlay.replication import BackgroundReplicator, BloomFilter, replica_set
from repro.overlay.routing import RoutingTable


def addresses(n):
    return [f"node-{i}" for i in range(n)]


class TestReplicaSet:
    def test_owner_first(self):
        snapshot = RoutingTable(addresses(6)).snapshot()
        key = sha1_key("item")
        replicas = replica_set(snapshot, key, 3)
        assert replicas[0] == snapshot.owner_of(key)
        assert len(replicas) == 3

    def test_replicas_are_ring_neighbours(self):
        snapshot = RoutingTable(addresses(6)).snapshot()
        key = sha1_key("item")
        owner = snapshot.owner_of(key)
        neighbours = set(snapshot.neighbours(owner, 1, True) + snapshot.neighbours(owner, 1, False))
        replicas = replica_set(snapshot, key, 3)
        assert set(replicas[1:]) <= neighbours

    def test_replication_factor_one(self):
        snapshot = RoutingTable(addresses(4)).snapshot()
        assert len(replica_set(snapshot, 123, 1)) == 1

    def test_small_cluster_caps_replicas(self):
        snapshot = RoutingTable(addresses(2)).snapshot()
        assert len(replica_set(snapshot, 123, 3)) == 2


class TestBloomFilter:
    def test_added_items_are_members(self):
        bloom = BloomFilter(expected_items=100)
        for i in range(100):
            bloom.add(("k", i))
        assert all(("k", i) in bloom for i in range(100))

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        for i in range(500):
            bloom.add(("present", i))
        false_positives = sum(1 for i in range(2000) if ("absent", i) in bloom)
        assert false_positives < 2000 * 0.05

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(10, false_positive_rate=1.5)

    def test_size_scales_with_expected_items(self):
        assert BloomFilter(10_000).size_bytes() > BloomFilter(10).size_bytes()

    @given(items=st.lists(st.integers(), max_size=200, unique=True))
    @settings(max_examples=30)
    def test_no_false_negatives(self, items):
        bloom = BloomFilter(expected_items=max(1, len(items)))
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)


class TestBackgroundReplicator:
    def _make_state(self, snapshot, replication_factor):
        """Node → {key: size} store where only owners hold their items."""
        stores = {addr: {} for addr in snapshot.nodes}
        items = []
        for i in range(200):
            key = sha1_key(("item", i))
            owner = snapshot.owner_of(key)
            stores[owner][key] = 100
            items.append(key)
        return stores, items

    def test_round_repairs_missing_replicas(self):
        snapshot = RoutingTable(addresses(5)).snapshot()
        replication_factor = 3
        stores, items = self._make_state(snapshot, replication_factor)

        def list_items(address, key_range):
            return {k: v for k, v in stores[address].items() if key_range.contains(k)}

        def copy_item(src, dst, key):
            stores[dst][key] = stores[src][key]
            return stores[src][key]

        replicator = BackgroundReplicator(replication_factor, list_items, copy_item)
        report = replicator.run_round(snapshot)
        assert report.items_copied > 0
        # After the round every item should be on `replication_factor` nodes
        # (modulo Bloom-filter false positives, which can only *skip* copies).
        fully_replicated = 0
        for key in items:
            holders = [a for a in stores if key in stores[a]]
            if len(holders) >= replication_factor:
                fully_replicated += 1
        assert fully_replicated >= len(items) * 0.95

    def test_second_round_is_mostly_idle(self):
        snapshot = RoutingTable(addresses(5)).snapshot()
        stores, _items = self._make_state(snapshot, 3)

        def list_items(address, key_range):
            return {k: v for k, v in stores[address].items() if key_range.contains(k)}

        def copy_item(src, dst, key):
            stores[dst][key] = stores[src][key]
            return stores[src][key]

        replicator = BackgroundReplicator(3, list_items, copy_item)
        first = replicator.run_round(snapshot)
        second = replicator.run_round(snapshot)
        assert second.items_copied <= first.items_copied * 0.1

    def test_round_repairs_every_missing_replica_exactly(self):
        # The Bloom filter only *suggests* membership; the exact store
        # double-check closes the false-positive hole, so a round must
        # reach full replication with no "modulo FP" allowance at all.
        snapshot = RoutingTable(addresses(5)).snapshot()
        replication_factor = 3
        stores, items = self._make_state(snapshot, replication_factor)

        def list_items(address, key_range):
            return {k: v for k, v in stores[address].items() if key_range.contains(k)}

        def copy_item(src, dst, key):
            stores[dst][key] = stores[src][key]
            return stores[src][key]

        replicator = BackgroundReplicator(replication_factor, list_items, copy_item)
        replicator.run_round(snapshot)
        for key in items:
            holders = [a for a in stores if key in stores[a]]
            assert len(holders) >= replication_factor

    def test_bloom_false_positives_are_counted_and_repaired(self, monkeypatch):
        # Force the false-positive hole deterministically: every filter
        # claims every key, so without the exact store double-check no
        # repair would ever run.  The round must still reach full
        # replication and count each disproved claim.
        import repro.overlay.replication as replication_module

        class SaturatedBloom:
            def __init__(self, expected_items, false_positive_rate=0.01):
                pass

            def add(self, key):
                pass

            def __contains__(self, key):
                return True

        monkeypatch.setattr(replication_module, "BloomFilter", SaturatedBloom)
        snapshot = RoutingTable(addresses(5)).snapshot()
        replication_factor = 3
        stores, items = self._make_state(snapshot, replication_factor)

        def list_items(address, key_range):
            return {k: v for k, v in stores[address].items() if key_range.contains(k)}

        def copy_item(src, dst, key):
            stores[dst][key] = stores[src][key]
            return stores[src][key]

        replicator = BackgroundReplicator(replication_factor, list_items, copy_item)
        report = replicator.run_round(snapshot)
        assert report.items_copied > 0
        # Every copy the saturated filters tried to veto was a counted FP.
        assert report.bloom_false_positives == report.items_copied
        for key in items:
            holders = [a for a in stores if key in stores[a]]
            assert len(holders) >= replication_factor
