"""Tests for key-range allocation strategies (Figure 2 of the paper)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import KEY_SPACE_SIZE, ranges_partition_ring, sha1_key
from repro.overlay.allocation import (
    ALLOCATORS,
    BalancedAllocation,
    PastryAllocation,
    allocation_imbalance,
    node_positions,
)

addresses_strategy = st.lists(
    st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12),
    min_size=1,
    max_size=24,
    unique=True,
)


def addresses(n):
    return [f"node-{i}" for i in range(n)]


class TestBalancedAllocation:
    def test_single_node_owns_full_ring(self):
        allocation = BalancedAllocation().allocate(addresses(1))
        (key_range,) = allocation.values()
        assert key_range.size() == KEY_SPACE_SIZE

    def test_ranges_partition_ring(self):
        allocation = BalancedAllocation().allocate(addresses(16))
        assert ranges_partition_ring(allocation.values())

    def test_ranges_are_equal_size(self):
        allocation = BalancedAllocation().allocate(addresses(8))
        sizes = [r.size() for r in allocation.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_membership(self):
        assert BalancedAllocation().allocate([]) == {}

    def test_assignment_follows_hash_order(self):
        allocation = BalancedAllocation().allocate(addresses(4))
        ordered_by_hash = sorted(addresses(4), key=lambda a: node_positions([a])[a])
        ordered_by_range = sorted(allocation, key=lambda a: allocation[a].start)
        assert ordered_by_hash == ordered_by_range

    def test_imbalance_is_one(self):
        allocation = BalancedAllocation().allocate(addresses(10))
        assert allocation_imbalance(allocation) == pytest.approx(1.0, rel=1e-6)

    @given(addrs=addresses_strategy)
    @settings(max_examples=50)
    def test_partition_property(self, addrs):
        allocation = BalancedAllocation().allocate(addrs)
        assert set(allocation) == set(addrs)
        assert ranges_partition_ring(allocation.values())

    @given(addrs=addresses_strategy, key=st.integers(0, KEY_SPACE_SIZE - 1))
    @settings(max_examples=50)
    def test_every_key_has_exactly_one_owner(self, addrs, key):
        allocation = BalancedAllocation().allocate(addrs)
        owners = [a for a, r in allocation.items() if r.contains(key)]
        assert len(owners) == 1


class TestPastryAllocation:
    def test_single_node_owns_full_ring(self):
        allocation = PastryAllocation().allocate(addresses(1))
        (key_range,) = allocation.values()
        assert key_range.size() == KEY_SPACE_SIZE

    def test_ranges_partition_ring(self):
        allocation = PastryAllocation().allocate(addresses(12))
        assert ranges_partition_ring(allocation.values())

    def test_node_owns_range_containing_its_id(self):
        allocation = PastryAllocation().allocate(addresses(8))
        positions = node_positions(addresses(8))
        for address, key_range in allocation.items():
            assert key_range.contains(positions[address])

    def test_small_membership_is_skewed(self):
        # The motivation for the balanced allocator (Figure 2): with a handful
        # of nodes the Pastry allocation is visibly unbalanced.
        allocation = PastryAllocation().allocate(addresses(5))
        assert allocation_imbalance(allocation) > 1.1

    @given(addrs=addresses_strategy)
    @settings(max_examples=50)
    def test_partition_property(self, addrs):
        allocation = PastryAllocation().allocate(addrs)
        assert ranges_partition_ring(allocation.values())


class TestComparison:
    def test_balanced_beats_pastry_on_imbalance(self):
        addrs = addresses(10)
        balanced = allocation_imbalance(BalancedAllocation().allocate(addrs))
        pastry = allocation_imbalance(PastryAllocation().allocate(addrs))
        assert balanced < pastry

    def test_allocator_registry(self):
        assert set(ALLOCATORS) == {"pastry", "balanced"}

    def test_data_distribution_uniformity(self):
        # Hash a batch of synthetic tuple keys and compare how evenly the two
        # allocators spread them over 8 nodes.
        addrs = addresses(8)
        keys = [sha1_key(("tuple", i)) for i in range(2000)]

        def spread(allocation):
            counts = {a: 0 for a in allocation}
            for key in keys:
                for address, key_range in allocation.items():
                    if key_range.contains(key):
                        counts[address] += 1
                        break
            return max(counts.values()) / (len(keys) / len(addrs))

        assert spread(BalancedAllocation().allocate(addrs)) < spread(
            PastryAllocation().allocate(addrs)
        )
