"""Tests for membership views and the epoch gossip protocol."""

from repro.common.hashing import ranges_partition_ring
from repro.net.simnet import Network
from repro.overlay.gossip import EpochGossip
from repro.overlay.membership import MembershipView, membership_of


def build_cluster(n=5, replication_factor=3):
    net = Network()
    members = [f"n{i}" for i in range(n)]
    views = {}
    for address in members:
        node = net.add_node(address)
        views[address] = MembershipView(node, members, replication_factor)
    return net, views


class TestMembershipView:
    def test_initial_members(self):
        _net, views = build_cluster(4)
        assert set(views["n0"].members()) == {"n0", "n1", "n2", "n3"}
        assert views["n0"].is_member("n3")

    def test_snapshot_partitions_ring(self):
        _net, views = build_cluster(6)
        snapshot = views["n0"].snapshot()
        assert ranges_partition_ring(snapshot.ranges().values())

    def test_failure_detection_updates_view(self):
        net, views = build_cluster(5)
        net.fail_node("n2")
        net.run()
        assert not views["n0"].is_member("n2")
        assert not views["n4"].is_member("n2")
        assert ranges_partition_ring(views["n0"].routing_table.allocation().values())

    def test_failure_notifies_listeners(self):
        net, views = build_cluster(4)
        events = []
        views["n0"].add_listener(lambda kind, addr, moves: events.append((kind, addr)))
        net.fail_node("n3")
        net.run()
        assert ("fail", "n3") in events

    def test_join_and_leave(self):
        net, views = build_cluster(3)
        new_node = net.add_node("n99")
        MembershipView(new_node, list(views["n0"].members()) + ["n99"], 3)
        moves = views["n0"].node_joined("n99")
        assert views["n0"].is_member("n99")
        assert moves
        views["n0"].node_left("n1")
        assert not views["n0"].is_member("n1")

    def test_membership_of_helper(self):
        net, views = build_cluster(2)
        assert membership_of(net.node("n0")) is views["n0"]

    def test_unknown_failure_ignored(self):
        _net, views = build_cluster(3)
        assert views["n0"].node_failed("not-a-member") == []


class TestEpochGossip:
    def build(self, n=6):
        net = Network()
        members = [f"n{i}" for i in range(n)]
        gossips = {}
        for address in members:
            node = net.add_node(address)
            gossips[address] = EpochGossip(node, peers=lambda members=members: members)
        return net, gossips

    def test_announce_propagates_epoch(self):
        net, gossips = self.build(6)
        gossips["n0"].announce(5)
        net.run()
        assert all(g.current_epoch == 5 for g in gossips.values())

    def test_older_epoch_ignored(self):
        net, gossips = self.build(4)
        gossips["n0"].announce(5)
        net.run()
        gossips["n1"].announce(3)
        net.run()
        assert all(g.current_epoch == 5 for g in gossips.values())

    def test_listeners_invoked_on_new_epoch(self):
        net, gossips = self.build(3)
        seen = []
        gossips["n2"].add_listener(seen.append)
        gossips["n0"].announce(7)
        net.run()
        assert seen == [7]

    def test_anti_entropy_heals_partition(self):
        net, gossips = self.build(5)
        # Manually advance one node without announcing (simulating a missed push).
        gossips["n3"].current_epoch = 9
        gossips["n3"].start_anti_entropy(rounds=2)
        net.run()
        assert sum(1 for g in gossips.values() if g.current_epoch == 9) >= 3

    def test_failed_node_does_not_gossip(self):
        net, gossips = self.build(4)
        net.fail_node("n0")
        gossips["n1"].announce(2)
        net.run()
        live = [g for a, g in gossips.items() if a != "n0"]
        assert all(g.current_epoch == 2 for g in live)


class TestGossipScaling:
    """Counter-based pins: gossip work must not grow with the full membership."""

    def build(self, n):
        net = Network()
        members = [f"n{i:03d}" for i in range(n)]
        gossips = {}
        for address in members:
            node = net.add_node(address)
            gossips[address] = EpochGossip(node, peers=lambda members=members: members)
        return net, members, gossips

    def test_epoch_push_messages_bounded_by_fanout_at_100_nodes(self):
        # Propagating one new epoch through 100 nodes costs at most
        # FANOUT pushes per node — not the all-peers broadcast (O(n^2))
        # the seed implementation used.
        net, _members, gossips = self.build(100)
        gossips["n000"].announce(1)
        net.run()
        messages = net.traffic.snapshot().messages_by_kind.get("gossip.epoch", 0)
        adopted = sum(1 for g in gossips.values() if g.current_epoch == 1)
        assert messages <= 100 * EpochGossip.FANOUT, messages
        # Push gossip alone reaches nearly everyone; anti-entropy covers the rest.
        assert adopted >= 90, adopted


class TestRejoinScaling:
    """A crash-restart rejoin is O(n) bytes on the wire, not O(n^2)."""

    def _rejoin_bytes(self, n):
        from repro.cluster import Cluster

        cluster = Cluster(n)
        cluster.run()
        victim = cluster.addresses[1]
        cluster.fail_node(victim)
        cluster.run()
        before = cluster.network.traffic.snapshot()
        cluster.restart_node(victim)
        cluster.run()
        delta = before.delta(cluster.network.traffic.snapshot())
        join_bytes = sum(
            size for kind, size in delta.bytes_by_kind.items()
            if kind in ("member.join", "member.view", "rpc.response")
        )
        return join_bytes, delta

    def test_rejoin_requests_one_view_not_n(self):
        _bytes, delta = self._rejoin_bytes(32)
        # Every seed learns of the rejoin (one-way announce), but only one
        # seed ships the O(n) member list back.
        assert delta.messages_by_kind.get("member.join") == 31
        assert delta.messages_by_kind.get("member.view") == 1

    def test_rejoin_bytes_scale_linearly_with_membership(self):
        small, _ = self._rejoin_bytes(32)
        large, _ = self._rejoin_bytes(64)
        # 2x the members: the old every-seed-replies protocol was ~4x.
        assert large <= 2.5 * small, (small, large)

    def test_rejoined_node_agrees_with_peers(self):
        from repro.cluster import Cluster

        cluster = Cluster(16)
        cluster.run()
        victim = cluster.addresses[3]
        cluster.fail_node(victim)
        cluster.run()
        cluster.restart_node(victim)
        cluster.run()
        views = [
            tuple(sorted(cluster.nodes[address].membership.members()))
            for address in cluster.addresses
        ]
        assert len(set(views)) == 1
        assert victim in views[0]
