"""Tests for membership views and the epoch gossip protocol."""

from repro.common.hashing import ranges_partition_ring
from repro.net.simnet import Network
from repro.overlay.gossip import EpochGossip
from repro.overlay.membership import MembershipView, membership_of


def build_cluster(n=5, replication_factor=3):
    net = Network()
    members = [f"n{i}" for i in range(n)]
    views = {}
    for address in members:
        node = net.add_node(address)
        views[address] = MembershipView(node, members, replication_factor)
    return net, views


class TestMembershipView:
    def test_initial_members(self):
        _net, views = build_cluster(4)
        assert set(views["n0"].members()) == {"n0", "n1", "n2", "n3"}
        assert views["n0"].is_member("n3")

    def test_snapshot_partitions_ring(self):
        _net, views = build_cluster(6)
        snapshot = views["n0"].snapshot()
        assert ranges_partition_ring(snapshot.ranges().values())

    def test_failure_detection_updates_view(self):
        net, views = build_cluster(5)
        net.fail_node("n2")
        net.run()
        assert not views["n0"].is_member("n2")
        assert not views["n4"].is_member("n2")
        assert ranges_partition_ring(views["n0"].routing_table.allocation().values())

    def test_failure_notifies_listeners(self):
        net, views = build_cluster(4)
        events = []
        views["n0"].add_listener(lambda kind, addr, moves: events.append((kind, addr)))
        net.fail_node("n3")
        net.run()
        assert ("fail", "n3") in events

    def test_join_and_leave(self):
        net, views = build_cluster(3)
        new_node = net.add_node("n99")
        MembershipView(new_node, list(views["n0"].members()) + ["n99"], 3)
        moves = views["n0"].node_joined("n99")
        assert views["n0"].is_member("n99")
        assert moves
        views["n0"].node_left("n1")
        assert not views["n0"].is_member("n1")

    def test_membership_of_helper(self):
        net, views = build_cluster(2)
        assert membership_of(net.node("n0")) is views["n0"]

    def test_unknown_failure_ignored(self):
        _net, views = build_cluster(3)
        assert views["n0"].node_failed("not-a-member") == []


class TestEpochGossip:
    def build(self, n=6):
        net = Network()
        members = [f"n{i}" for i in range(n)]
        gossips = {}
        for address in members:
            node = net.add_node(address)
            gossips[address] = EpochGossip(node, peers=lambda members=members: members)
        return net, gossips

    def test_announce_propagates_epoch(self):
        net, gossips = self.build(6)
        gossips["n0"].announce(5)
        net.run()
        assert all(g.current_epoch == 5 for g in gossips.values())

    def test_older_epoch_ignored(self):
        net, gossips = self.build(4)
        gossips["n0"].announce(5)
        net.run()
        gossips["n1"].announce(3)
        net.run()
        assert all(g.current_epoch == 5 for g in gossips.values())

    def test_listeners_invoked_on_new_epoch(self):
        net, gossips = self.build(3)
        seen = []
        gossips["n2"].add_listener(seen.append)
        gossips["n0"].announce(7)
        net.run()
        assert seen == [7]

    def test_anti_entropy_heals_partition(self):
        net, gossips = self.build(5)
        # Manually advance one node without announcing (simulating a missed push).
        gossips["n3"].current_epoch = 9
        gossips["n3"].start_anti_entropy(rounds=2)
        net.run()
        assert sum(1 for g in gossips.values() if g.current_epoch == 9) >= 3

    def test_failed_node_does_not_gossip(self):
        net, gossips = self.build(4)
        net.fail_node("n0")
        gossips["n1"].announce(2)
        net.run()
        live = [g for a, g in gossips.items() if a != "n0"]
        assert all(g.current_epoch == 2 for g in live)
