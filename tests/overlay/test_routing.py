"""Tests for routing tables, snapshots and failure reassignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import RoutingError
from repro.common.hashing import ranges_partition_ring, sha1_key
from repro.overlay.allocation import PastryAllocation
from repro.overlay.routing import RoutingSnapshot, RoutingTable, physical_address


def addresses(n):
    return [f"node-{i}" for i in range(n)]


class TestRoutingTable:
    def test_snapshot_partitions_ring(self):
        table = RoutingTable(addresses(8))
        snapshot = table.snapshot()
        assert ranges_partition_ring(snapshot.ranges().values())
        assert len(snapshot) == 8

    def test_owner_lookup_consistent_with_ranges(self):
        table = RoutingTable(addresses(6))
        for i in range(100):
            key = sha1_key(("probe", i))
            owner = table.owner_of(key)
            assert table.range_of(owner).contains(key)

    def test_add_node_changes_version(self):
        table = RoutingTable(addresses(4))
        version = table.version
        table.add_node("new-node")
        assert table.version == version + 1
        assert "new-node" in table.members

    def test_add_existing_node_is_noop(self):
        table = RoutingTable(addresses(4))
        version = table.version
        assert table.add_node("node-1") == []
        assert table.version == version

    def test_remove_node(self):
        table = RoutingTable(addresses(4))
        table.remove_node("node-2")
        assert "node-2" not in table.members
        assert ranges_partition_ring(table.allocation().values())

    def test_remove_unknown_node_is_noop(self):
        table = RoutingTable(addresses(4))
        assert table.remove_node("missing") == []

    def test_membership_changes_report_moves(self):
        table = RoutingTable(addresses(4))
        moves = table.add_node("node-99")
        assert moves  # the new node took over ranges from existing nodes
        assert any(m.new_owner == "node-99" for m in moves)

    def test_pastry_allocator_supported(self):
        table = RoutingTable(addresses(5), allocator=PastryAllocation())
        assert ranges_partition_ring(table.allocation().values())

    def test_unknown_range_of(self):
        table = RoutingTable(addresses(2))
        with pytest.raises(RoutingError):
            table.range_of("missing")


class TestRoutingSnapshot:
    def test_empty_snapshot_rejected(self):
        with pytest.raises(RoutingError):
            RoutingSnapshot({})

    def test_owner_of_matches_contains(self):
        snapshot = RoutingTable(addresses(10)).snapshot()
        for i in range(200):
            key = sha1_key(("k", i))
            owner = snapshot.owner_of(key)
            assert snapshot.range_of(owner).contains(key)

    def test_nodes_in_ring_order(self):
        snapshot = RoutingTable(addresses(5)).snapshot()
        starts = [snapshot.range_of(a).start for a in snapshot.nodes]
        assert starts == sorted(starts)

    def test_contains(self):
        snapshot = RoutingTable(addresses(3)).snapshot()
        assert "node-0" in snapshot
        assert "missing" not in snapshot

    def test_neighbours_clockwise_and_counter(self):
        snapshot = RoutingTable(addresses(5)).snapshot()
        nodes = snapshot.nodes
        cw = snapshot.neighbours(nodes[0], 2, clockwise=True)
        ccw = snapshot.neighbours(nodes[0], 2, clockwise=False)
        assert cw == [nodes[1], nodes[2]]
        assert ccw == [nodes[-1], nodes[-2]]

    def test_neighbours_capped_by_membership(self):
        snapshot = RoutingTable(addresses(3)).snapshot()
        assert len(snapshot.neighbours(snapshot.nodes[0], 10, clockwise=True)) == 2

    def test_replicas_for_key(self):
        snapshot = RoutingTable(addresses(6)).snapshot()
        key = sha1_key("some-key")
        replicas = snapshot.replicas_for_key(key, replication_factor=3)
        assert len(replicas) == 3
        assert replicas[0] == snapshot.owner_of(key)
        assert len(set(replicas)) == 3

    def test_replicas_more_than_members(self):
        snapshot = RoutingTable(addresses(2)).snapshot()
        replicas = snapshot.replicas_for_key(0, replication_factor=5)
        assert len(replicas) == 2

    def test_replication_factor_must_be_positive(self):
        snapshot = RoutingTable(addresses(2)).snapshot()
        with pytest.raises(ValueError):
            snapshot.replicas_for_key(0, replication_factor=0)


class TestFailureReassignment:
    def test_reassign_preserves_partition(self):
        snapshot = RoutingTable(addresses(8)).snapshot()
        failed = snapshot.nodes[2]
        new_snapshot, moves = snapshot.reassign_failed([failed], replication_factor=3)
        assert ranges_partition_ring(new_snapshot.ranges().values())
        assert failed not in new_snapshot
        assert moves
        assert all(m.old_owner == failed for m in moves)

    def test_moved_ranges_cover_failed_range(self):
        snapshot = RoutingTable(addresses(8)).snapshot()
        failed = snapshot.nodes[0]
        failed_range = snapshot.range_of(failed)
        _new_snapshot, moves = snapshot.reassign_failed([failed], replication_factor=3)
        assert sum(m.key_range.size() for m in moves) == failed_range.size()

    def test_new_owners_are_replica_holders(self):
        snapshot = RoutingTable(addresses(8)).snapshot()
        failed = snapshot.nodes[3]
        replicas = {physical_address(r) for r in snapshot.replicas_for_owner(failed, 3)}
        _new, moves = snapshot.reassign_failed([failed], replication_factor=3)
        for move in moves:
            assert physical_address(move.new_owner) in replicas

    def test_multiple_failures(self):
        snapshot = RoutingTable(addresses(10)).snapshot()
        failed = list(snapshot.nodes[:3])
        new_snapshot, _moves = snapshot.reassign_failed(failed, replication_factor=3)
        assert ranges_partition_ring(new_snapshot.ranges().values())
        for address in failed:
            assert address not in new_snapshot

    def test_no_failures_returns_same_snapshot(self):
        snapshot = RoutingTable(addresses(4)).snapshot()
        same, moves = snapshot.reassign_failed([], replication_factor=3)
        assert same is snapshot
        assert moves == []

    def test_all_failed_raises(self):
        snapshot = RoutingTable(addresses(3)).snapshot()
        with pytest.raises(RoutingError):
            snapshot.reassign_failed(list(snapshot.nodes), replication_factor=3)

    def test_version_increments(self):
        snapshot = RoutingTable(addresses(4)).snapshot()
        new_snapshot, _ = snapshot.reassign_failed([snapshot.nodes[0]], replication_factor=3)
        assert new_snapshot.version == snapshot.version + 1

    def test_physical_address_of_synthetic_entries(self):
        assert physical_address("node-1#2") == "node-1"
        assert physical_address("node-1") == "node-1"

    @given(
        n=st.integers(min_value=3, max_value=16),
        fail_count=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30)
    def test_reassignment_property(self, n, fail_count):
        fail_count = min(fail_count, n - 1)
        snapshot = RoutingTable(addresses(n)).snapshot()
        failed = list(snapshot.nodes[:fail_count])
        new_snapshot, moves = snapshot.reassign_failed(failed, replication_factor=3)
        assert ranges_partition_ring(new_snapshot.ranges().values())
        total_moved = sum(m.key_range.size() for m in moves)
        total_failed = sum(snapshot.range_of(f).size() for f in failed)
        assert total_moved == total_failed
        # Every key still has exactly one owner, and it is a surviving node.
        for i in range(20):
            key = sha1_key(("probe", i))
            owner = physical_address(new_snapshot.owner_of(key))
            assert owner not in failed


class TestScalingRegressions:
    """Counter-based pins for the large-cluster routing fixes."""

    def test_snapshot_object_reused_until_membership_changes(self):
        # Back-to-back snapshots of an unchanged membership are the *same*
        # object: query initiation at high rates must not rebuild the O(n)
        # snapshot per query.
        table = RoutingTable(addresses(12))
        first = table.snapshot()
        assert table.snapshot() is first
        table.add_node("node-99")
        second = table.snapshot()
        assert second is not first
        assert table.snapshot() is second
        table.remove_node("node-99")
        assert table.snapshot() is not second

    def test_snapshot_builds_counted_once_per_version(self):
        table = RoutingTable(addresses(16))
        table.snapshot()
        before = RoutingSnapshot.build_count
        for _ in range(50):
            table.snapshot()
        assert RoutingSnapshot.build_count == before

    def test_membership_diff_probes_scale_linearly(self):
        # The join/leave diff locates each new range's old owner by bisection;
        # the former linear probe per range made one membership change O(n^2)
        # KeyRange.contains calls (O(n^3) cluster-wide per churn event).
        from repro.common.hashing import KeyRange

        counts = {}
        original = KeyRange.contains

        def run(n):
            table = RoutingTable(addresses(n))
            calls = {"n": 0}

            def counting(self, key):
                calls["n"] += 1
                return original(self, key)

            KeyRange.contains = counting
            try:
                table.add_node("node-999")
            finally:
                KeyRange.contains = original
            return calls["n"]

        counts[64] = run(64)
        counts[128] = run(128)
        assert counts[64] > 0
        # 2x the members: a linear probe per range would be ~4x the calls.
        assert counts[128] <= 3 * counts[64], counts

    def test_owners_overlapping_matches_linear_scan(self):
        table = RoutingTable(addresses(9))
        snapshot = table.snapshot()
        for i in range(25):
            start = sha1_key(("ov", i))
            key_range = KeyRangeFor(start, (start + 2**155) % (2**160))
            expected = {
                entry for entry, kr in snapshot.ranges().items()
                if kr.overlaps(key_range)
            }
            assert set(snapshot.owners_overlapping(key_range)) == expected


def KeyRangeFor(start, end):
    from repro.common.hashing import KeyRange

    return KeyRange(start, end)
