"""Tests for the CDSS layer: mappings, update exchange, reconciliation,
participants and the publish/import cycle over the shared storage."""

import pytest

from repro.cdss.mappings import SchemaMapping, UpdateExchange
from repro.cdss.participant import Orchestra, Participant, share_relations
from repro.cdss.reconciliation import Reconciler, candidates_from_rows
from repro.common.errors import CDSSError, MappingError
from repro.common.types import RelationData, Schema
from repro.query.expressions import col, concat, lit

SOURCE = Schema("SourceGenes", ["gene_id", "symbol", "organism"], key=["gene_id"])
TARGET = Schema("LocalGenes", ["lg_id", "lg_label"], key=["lg_id"])
ANNOT = Schema("Annotations", ["an_gene", "an_text"], key=["an_gene"])


class TestSchemaMapping:
    def test_projection_mapping_query(self):
        mapping = SchemaMapping(
            "copy_genes", TARGET, [SOURCE],
            outputs=[("lg_id", col("gene_id")), ("lg_label", concat(col("symbol"), lit("/"), col("organism")))],
        )
        query = mapping.to_query()
        assert query.output_attributes() == ("lg_id", "lg_label")
        assert mapping.referenced_relations() == {"SourceGenes"}

    def test_join_mapping_requires_condition(self):
        with pytest.raises(MappingError):
            SchemaMapping("bad", TARGET, [SOURCE, ANNOT])

    def test_default_outputs_copy_positionally(self):
        mapping = SchemaMapping("default", TARGET, [SOURCE])
        names = [name for name, _ in mapping.outputs]
        assert names == list(TARGET.attributes)

    def test_invalid_output_attribute(self):
        with pytest.raises(MappingError):
            SchemaMapping("bad", TARGET, [SOURCE], outputs=[("nope", col("gene_id"))])

    def test_too_many_sources(self):
        with pytest.raises(MappingError):
            SchemaMapping("bad", TARGET, [SOURCE, ANNOT, TARGET], join=[("a", "b")])


class TestUpdateExchangeDiff:
    def make_exchange(self):
        mapping = SchemaMapping(
            "copy", TARGET, [SOURCE],
            outputs=[("lg_id", col("gene_id")), ("lg_label", col("symbol"))],
        )
        return UpdateExchange([mapping])

    def test_new_rows_become_inserts(self):
        exchange = self.make_exchange()
        deltas = exchange.compute_deltas(
            run_query=lambda q: [("g1", "BRCA1"), ("g2", "TP53")],
            local_state={"LocalGenes": RelationData(TARGET)},
        )
        (delta,) = deltas
        assert len(delta.inserts) == 2
        assert not delta.modifications

    def test_changed_rows_become_modifications(self):
        exchange = self.make_exchange()
        local = RelationData(TARGET)
        local.add("g1", "OLD")
        local.add("g2", "TP53")
        deltas = exchange.compute_deltas(
            run_query=lambda q: [("g1", "BRCA1"), ("g2", "TP53")],
            local_state={"LocalGenes": local},
        )
        (delta,) = deltas
        assert delta.modifications == [("g1", "BRCA1")]
        assert delta.unchanged == 1
        assert not delta.inserts

    def test_duplicate_derivations_are_collapsed(self):
        exchange = self.make_exchange()
        deltas = exchange.compute_deltas(
            run_query=lambda q: [("g1", "BRCA1"), ("g1", "BRCA1")],
            local_state={},
        )
        assert len(deltas[0].inserts) == 1

    def test_arity_mismatch_rejected(self):
        exchange = self.make_exchange()
        with pytest.raises(MappingError):
            exchange.compute_deltas(run_query=lambda q: [("only-one",)], local_state={})

    def test_required_relations(self):
        assert self.make_exchange().required_relations() == {"SourceGenes"}


class TestReconciliation:
    def test_no_conflict_when_values_agree(self):
        reconciler = Reconciler({"alice": 2, "bob": 1})
        candidates = candidates_from_rows(
            TARGET, {"alice": [("g1", "X")], "bob": [("g1", "X")]}
        )
        outcome = reconciler.reconcile(candidates)
        assert not outcome.conflicts
        assert outcome.accepted[("LocalGenes", ("g1",))].values == ("g1", "X")

    def test_higher_priority_wins(self):
        reconciler = Reconciler({"alice": 5, "bob": 1})
        candidates = candidates_from_rows(
            TARGET, {"alice": [("g1", "ALICE")], "bob": [("g1", "BOB")]}
        )
        outcome = reconciler.reconcile(candidates)
        assert len(outcome.conflicts) == 1
        assert outcome.accepted[("LocalGenes", ("g1",))].publisher == "alice"

    def test_tie_break_is_deterministic(self):
        reconciler = Reconciler({"alice": 1, "bob": 1})
        candidates = candidates_from_rows(
            TARGET, {"alice": [("g1", "Z")], "bob": [("g1", "A")]}
        )
        outcome = reconciler.reconcile(candidates)
        assert outcome.accepted[("LocalGenes", ("g1",))].values == ("g1", "A")

    def test_defer_unresolved(self):
        reconciler = Reconciler({}, defer_unresolved=True)
        candidates = candidates_from_rows(
            TARGET, {"alice": [("g1", "Z")], "bob": [("g1", "A")]}
        )
        outcome = reconciler.reconcile(candidates)
        assert len(outcome.deferred) == 1
        assert ("LocalGenes", ("g1",)) not in outcome.accepted

    def test_accepted_rows_helper(self):
        reconciler = Reconciler({})
        candidates = candidates_from_rows(TARGET, {"alice": [("g1", "X"), ("g2", "Y")]})
        outcome = reconciler.reconcile(candidates)
        assert sorted(outcome.accepted_rows("LocalGenes")) == [("g1", "X"), ("g2", "Y")]


class TestPublishImportCycle:
    def build_cdss(self):
        orchestra = Orchestra(num_nodes=4)
        alice = orchestra.add_participant(
            Participant("alice", [SOURCE], trust={"alice": 10, "import": 5})
        )
        mapping = SchemaMapping(
            "import_genes", TARGET, [SOURCE],
            outputs=[("lg_id", col("gene_id")), ("lg_label", col("symbol"))],
        )
        bob = orchestra.add_participant(
            Participant("bob", [TARGET], mappings=[mapping], trust={"bob": 1, "import": 5})
        )
        return orchestra, alice, bob

    def test_publish_then_import(self):
        orchestra, alice, bob = self.build_cdss()
        alice.insert("SourceGenes", "g1", "BRCA1", "human")
        alice.insert("SourceGenes", "g2", "TP53", "human")
        epoch = alice.publish()
        report = bob.import_updates(epoch)
        assert report.total_changes() == 2
        assert sorted(bob.local_database["LocalGenes"].rows) == [
            ("g1", "BRCA1"), ("g2", "TP53"),
        ]

    def test_second_import_is_incremental(self):
        orchestra, alice, bob = self.build_cdss()
        alice.insert("SourceGenes", "g1", "BRCA1", "human")
        bob.import_updates(alice.publish())
        alice.insert("SourceGenes", "g3", "EGFR", "human")
        report = bob.import_updates(alice.publish())
        assert report.total_changes() == 1
        assert len(bob.local_database["LocalGenes"].rows) == 2

    def test_import_at_old_epoch_ignores_later_publications(self):
        orchestra, alice, bob = self.build_cdss()
        alice.insert("SourceGenes", "g1", "BRCA1", "human")
        first_epoch = alice.publish()
        alice.insert("SourceGenes", "g2", "TP53", "human")
        alice.publish()
        report = bob.import_updates(first_epoch)
        assert report.total_changes() == 1

    def test_local_modifications_are_published(self):
        orchestra, alice, bob = self.build_cdss()
        alice.insert("SourceGenes", "g1", "BRCA1", "human")
        bob.import_updates(alice.publish())
        alice.modify("SourceGenes", "g1", "BRCA1-renamed", "human")
        report = bob.import_updates(alice.publish())
        assert report.deltas[0].modifications == [("g1", "BRCA1-renamed")]
        assert bob.local_database["LocalGenes"].rows == [("g1", "BRCA1-renamed")]

    def test_trusted_local_value_survives_import(self):
        orchestra, alice, bob = self.build_cdss()
        bob.reconciler = Reconciler({"bob": 10, "import": 1})
        bob.local_database["LocalGenes"].add("g1", "curated-label")
        alice.insert("SourceGenes", "g1", "BRCA1", "human")
        report = bob.import_updates(alice.publish())
        # Bob trusts his curated value more than the imported one.
        assert bob.local_database["LocalGenes"].rows == [("g1", "curated-label")]
        assert report.reconciliation is not None
        assert len(report.reconciliation.conflicts) == 1

    def test_share_relations_helper_and_deletes(self):
        orchestra, alice, bob = self.build_cdss()
        data = RelationData(SOURCE)
        data.add("g1", "BRCA1", "human")
        data.add("g2", "TP53", "human")
        share_relations(alice, [data])
        epoch = alice.publish()
        assert orchestra.cluster.retrieve("SourceGenes", epoch=epoch).rows()
        alice.delete("SourceGenes", "g2")
        new_epoch = alice.publish()
        remaining = orchestra.cluster.retrieve("SourceGenes", epoch=new_epoch)
        assert sorted(r[0] for r in remaining.rows()) == ["g1"]

    def test_participant_requires_membership(self):
        lonely = Participant("solo", [SOURCE])
        with pytest.raises(CDSSError):
            lonely.publish()
        with pytest.raises(CDSSError):
            lonely.import_updates()

    def test_duplicate_participant_rejected(self):
        orchestra, alice, _bob = self.build_cdss()
        with pytest.raises(CDSSError):
            orchestra.add_participant(Participant("alice", [SOURCE]))

    def test_analytic_query_over_shared_storage(self):
        orchestra, alice, bob = self.build_cdss()
        alice.insert("SourceGenes", "g1", "BRCA1", "human")
        alice.insert("SourceGenes", "g2", "TP53", "mouse")
        alice.publish()
        result = orchestra.run_query("SELECT organism, COUNT(*) AS n FROM SourceGenes GROUP BY organism")
        assert sorted(result.rows) == [("human", 1), ("mouse", 1)]
