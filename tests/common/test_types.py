"""Tests for the relational data model (repro.common.types)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SchemaError
from repro.common.types import (
    RelationData,
    Row,
    Schema,
    TupleId,
    VersionedTuple,
    estimate_values_size,
)


class TestSchema:
    def test_basic_construction(self):
        schema = Schema("R", ["x", "y"], key=["x"])
        assert schema.arity == 2
        assert schema.key == ("x",)

    def test_default_key_is_first_attribute(self):
        schema = Schema("R", ["x", "y"])
        assert schema.key == ("x",)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", ["x", "x"])

    def test_key_must_be_subset(self):
        with pytest.raises(SchemaError):
            Schema("R", ["x", "y"], key=["z"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", [])

    def test_index_of(self):
        schema = Schema("R", ["x", "y", "z"])
        assert schema.index_of("y") == 1
        with pytest.raises(SchemaError):
            schema.index_of("w")

    def test_key_of_extracts_key_values(self):
        schema = Schema("R", ["x", "y", "z"], key=["z", "x"])
        assert schema.key_of(("a", "b", "c")) == ("c", "a")

    def test_key_of_checks_arity(self):
        schema = Schema("R", ["x", "y"])
        with pytest.raises(SchemaError):
            schema.key_of(("a",))

    def test_project_and_rename(self):
        schema = Schema("R", ["x", "y", "z"])
        projected = schema.project(["z", "x"], new_name="P")
        assert projected.name == "P"
        assert projected.attributes == ("z", "x")
        renamed = schema.rename("S")
        assert renamed.name == "S"
        assert renamed.attributes == schema.attributes


class TestTupleId:
    def test_hash_key_ignores_epoch(self):
        assert TupleId(("a",), 0).hash_key == TupleId(("a",), 5).hash_key

    def test_different_keys_have_different_hashes(self):
        assert TupleId(("a",), 0).hash_key != TupleId(("b",), 0).hash_key

    def test_ordering_and_equality(self):
        assert TupleId(("a",), 0) == TupleId(("a",), 0)
        assert TupleId(("a",), 0) < TupleId(("a",), 1)

    def test_with_epoch(self):
        tid = TupleId(("a",), 0).with_epoch(3)
        assert tid.epoch == 3
        assert tid.key_values == ("a",)

    def test_repr_shows_key_and_epoch(self):
        assert "@ 1" in repr(TupleId(("f",), 1))


class TestVersionedTuple:
    def test_fields(self):
        vt = VersionedTuple("R", TupleId(("a",), 2), ("a", "b"))
        assert vt.relation == "R"
        assert vt.epoch == 2
        assert vt.values == ("a", "b")
        assert not vt.deleted

    def test_hash_key_matches_tuple_id(self):
        tid = TupleId(("a",), 2)
        assert VersionedTuple("R", tid, ("a", "b")).hash_key == tid.hash_key

    def test_estimated_size_positive(self):
        vt = VersionedTuple("R", TupleId(("a",), 2), ("a", "some text", 12))
        assert vt.estimated_size() > 0


class TestRow:
    def test_mapping_interface(self):
        row = Row(("x", "y"), (1, "a"))
        assert row["x"] == 1
        assert row["y"] == "a"
        assert list(row) == ["x", "y"]
        assert len(row) == 2
        assert dict(row) == {"x": 1, "y": "a"}

    def test_missing_attribute(self):
        with pytest.raises(KeyError):
            Row(("x",), (1,))["y"]

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            Row(("x", "y"), (1,))

    def test_project(self):
        row = Row(("x", "y", "z"), (1, 2, 3))
        assert row.project(["z", "x"]).values == (3, 1)

    def test_concat(self):
        left = Row(("x",), (1,))
        right = Row(("y",), (2,))
        combined = left.concat(right)
        assert combined.attributes == ("x", "y")
        assert combined.values == (1, 2)

    def test_equality_and_hash(self):
        assert Row(("x",), (1,)) == Row(("x",), (1,))
        assert hash(Row(("x",), (1,))) == hash(Row(("x",), (1,)))
        assert Row(("x",), (1,)) != Row(("x",), (2,))

    def test_from_mapping(self):
        row = Row.from_mapping({"a": 1, "b": 2})
        assert row["a"] == 1 and row["b"] == 2


class TestRelationData:
    def test_add_and_iterate(self):
        data = RelationData(Schema("R", ["x", "y"]))
        data.add("a", 1)
        data.add("b", 2)
        assert len(data) == 2
        assert list(data) == [("a", 1), ("b", 2)]

    def test_add_checks_arity(self):
        data = RelationData(Schema("R", ["x", "y"]))
        with pytest.raises(SchemaError):
            data.add("only-one")

    def test_extend(self):
        data = RelationData(Schema("R", ["x"]))
        data.extend([("a",), ("b",)])
        assert len(data) == 2

    def test_estimated_size(self):
        data = RelationData(Schema("R", ["x"]))
        data.add("hello")
        assert data.estimated_size() == estimate_values_size(("hello",))


class TestEstimateValuesSize:
    def test_strings_scale_with_length(self):
        assert estimate_values_size(("aaaa",)) > estimate_values_size(("a",))

    def test_all_supported_types(self):
        size = estimate_values_size((None, True, 3, 2.5, "s", b"b", (1, 2)))
        assert size > 0

    @given(st.lists(st.one_of(st.integers(), st.text(max_size=30), st.floats(allow_nan=False), st.none())))
    def test_size_is_positive_and_monotone(self, values):
        base = estimate_values_size(values)
        assert base >= 2
        assert estimate_values_size(values + [1]) > base
