"""Round-trip and sizing tests for the wire serialization layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import (
    SerializationError,
    TupleBatch,
    decode_value,
    decode_values,
    encode_value,
    encode_values,
)

scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)
values = st.one_of(scalar_values, st.tuples(scalar_values, scalar_values))


class TestValueCodec:
    @given(value=values)
    @settings(max_examples=200)
    def test_round_trip(self, value):
        payload = encode_value(value)
        decoded, offset = decode_value(payload)
        assert decoded == value
        assert offset == len(payload)

    def test_unsupported_type(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_truncated_payload(self):
        with pytest.raises(SerializationError):
            decode_value(b"")

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            decode_value(bytes([250]))

    @given(row=st.lists(scalar_values, max_size=10))
    @settings(max_examples=100)
    def test_values_round_trip(self, row):
        payload = encode_values(tuple(row))
        decoded, offset = decode_values(payload)
        assert decoded == tuple(row)
        assert offset == len(payload)


class TestTupleBatch:
    def test_build_and_sizes(self):
        batch = TupleBatch.build(("x", "y"), [("a", 1), ("b", 2)])
        assert len(batch) == 2
        assert batch.raw_size > 0
        assert batch.compressed_size > 0
        assert batch.wire_size == batch.compressed_size + TupleBatch.HEADER_BYTES

    def test_round_trip_through_payload(self):
        rows = [(f"value-{i}", i, 1.5 * i) for i in range(50)]
        batch = TupleBatch.build(("s", "n", "f"), rows)
        restored = TupleBatch.unmarshal(batch.compressed_payload())
        assert restored.attributes == ("s", "n", "f")
        assert restored.rows == rows

    def test_repetitive_data_compresses_well(self):
        rows = [("the same long string " * 3, 7)] * 200
        batch = TupleBatch.build(("s", "n"), rows)
        assert batch.compressed_size < batch.raw_size / 5

    def test_empty_batch(self):
        batch = TupleBatch.build(("x",), [])
        assert len(batch) == 0
        restored = TupleBatch.unmarshal(batch.compressed_payload())
        assert restored.rows == []

    @given(
        rows=st.lists(st.tuples(st.text(max_size=20), st.integers(-1000, 1000)), max_size=30)
    )
    @settings(max_examples=50)
    def test_round_trip_property(self, rows):
        batch = TupleBatch.build(("a", "b"), rows)
        restored = TupleBatch.unmarshal(batch.compressed_payload())
        assert restored.rows == rows
