"""Unit and property tests for the 160-bit key ring (repro.common.hashing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import (
    KEY_SPACE_SIZE,
    KeyRange,
    format_key,
    node_id_for,
    ranges_partition_ring,
    ring_add,
    ring_distance,
    sha1_key,
)

keys = st.integers(min_value=0, max_value=KEY_SPACE_SIZE - 1)


class TestSha1Key:
    def test_within_key_space(self):
        assert 0 <= sha1_key("hello") < KEY_SPACE_SIZE

    def test_deterministic(self):
        assert sha1_key(("r", 3)) == sha1_key(("r", 3))

    def test_different_inputs_differ(self):
        assert sha1_key("a") != sha1_key("b")

    def test_composite_boundaries_matter(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert sha1_key(("ab", "c")) != sha1_key(("a", "bc"))

    def test_int_and_str_do_not_collide(self):
        assert sha1_key(1) != sha1_key("1")

    def test_none_and_bool_supported(self):
        assert sha1_key(None) != sha1_key(False)
        assert sha1_key(True) != sha1_key(1)

    def test_nested_tuples(self):
        assert sha1_key((1, (2, 3))) != sha1_key((1, 2, 3))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            sha1_key(object())

    def test_node_id_differs_from_plain_hash(self):
        assert node_id_for("node-1") != sha1_key("node-1")

    def test_format_key_prefix(self):
        assert format_key(0).startswith("0x")


class TestRingArithmetic:
    def test_ring_add_wraps(self):
        assert ring_add(KEY_SPACE_SIZE - 1, 2) == 1

    def test_ring_distance_simple(self):
        assert ring_distance(10, 15) == 5

    def test_ring_distance_wraps(self):
        assert ring_distance(KEY_SPACE_SIZE - 5, 5) == 10

    @given(a=keys, b=keys)
    def test_distance_and_add_are_inverse(self, a, b):
        assert ring_add(a, ring_distance(a, b)) == b


class TestKeyRange:
    def test_simple_contains(self):
        key_range = KeyRange(10, 20)
        assert key_range.contains(10)
        assert key_range.contains(19)
        assert not key_range.contains(20)
        assert not key_range.contains(9)

    def test_wrapping_contains(self):
        key_range = KeyRange(KEY_SPACE_SIZE - 10, 10)
        assert key_range.contains(KEY_SPACE_SIZE - 1)
        assert key_range.contains(0)
        assert key_range.contains(9)
        assert not key_range.contains(10)
        assert not key_range.contains(KEY_SPACE_SIZE // 2)

    def test_full_ring_contains_everything(self):
        key_range = KeyRange.full_ring(42)
        assert key_range.contains(0)
        assert key_range.contains(KEY_SPACE_SIZE - 1)
        assert key_range.size() == KEY_SPACE_SIZE

    def test_empty_range(self):
        key_range = KeyRange.empty(42)
        assert key_range.is_empty()
        assert not key_range.contains(42)
        assert key_range.size() == 0

    def test_full_ring_requires_equal_bounds(self):
        with pytest.raises(ValueError):
            KeyRange(1, 2, full=True)

    def test_out_of_space_bounds_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(-1, 10)
        with pytest.raises(ValueError):
            KeyRange(0, KEY_SPACE_SIZE)

    def test_midpoint_inside_range(self):
        key_range = KeyRange(100, 200)
        assert key_range.contains(key_range.midpoint())
        assert key_range.midpoint() == 150

    def test_midpoint_of_wrapping_range(self):
        key_range = KeyRange(KEY_SPACE_SIZE - 100, 100)
        assert key_range.contains(key_range.midpoint())

    def test_split_partitions_range(self):
        key_range = KeyRange(0, 1000)
        pieces = key_range.split(3)
        assert len(pieces) == 3
        assert sum(p.size() for p in pieces) == key_range.size()
        # Pieces chain together.
        assert pieces[0].end == pieces[1].start
        assert pieces[1].end == pieces[2].start

    def test_split_full_ring(self):
        pieces = KeyRange.full_ring(0).split(4)
        assert sum(p.size() for p in pieces) == KEY_SPACE_SIZE
        assert ranges_partition_ring(pieces)

    def test_split_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            KeyRange(0, 10).split(0)

    def test_overlaps(self):
        assert KeyRange(0, 100).overlaps(KeyRange(50, 150))
        assert not KeyRange(0, 100).overlaps(KeyRange(100, 200))
        assert KeyRange.full_ring(0).overlaps(KeyRange(5, 6))

    def test_keys_sample_inside(self):
        key_range = KeyRange(1000, 2000)
        sample = list(key_range.keys_sample(10))
        assert len(sample) == 10
        assert all(key_range.contains(k) for k in sample)

    @given(start=keys, size=st.integers(min_value=1, max_value=KEY_SPACE_SIZE - 1), pieces=st.integers(min_value=1, max_value=12))
    @settings(max_examples=50)
    def test_split_property(self, start, size, pieces):
        key_range = KeyRange(start, ring_add(start, size))
        parts = key_range.split(pieces)
        assert len(parts) == pieces
        assert sum(p.size() for p in parts) == key_range.size()
        for p in parts:
            if not p.is_empty():
                assert key_range.contains(p.start)

    @given(start=keys, size=st.integers(min_value=1, max_value=KEY_SPACE_SIZE - 1), key=keys)
    @settings(max_examples=50)
    def test_contains_matches_distance(self, start, size, key):
        key_range = KeyRange(start, ring_add(start, size))
        assert key_range.contains(key) == (ring_distance(start, key) < size)


class TestRangesPartitionRing:
    def test_single_full_ring(self):
        assert ranges_partition_ring([KeyRange.full_ring(0)])

    def test_two_halves(self):
        half = KEY_SPACE_SIZE // 2
        assert ranges_partition_ring([KeyRange(0, half), KeyRange(half, 0)])

    def test_gap_detected(self):
        half = KEY_SPACE_SIZE // 2
        assert not ranges_partition_ring([KeyRange(0, half), KeyRange(half + 1, 0)])

    def test_empty_collection(self):
        assert not ranges_partition_ring([])
