"""Golden vectors and seeded property round-trips for the column codecs.

The encoded-batch wire format (codec tags 8-11) carries real traffic: every
scan-cache entry, exchange batch and pushdown result ships through
:func:`encode_column_values` and :class:`EncodedTupleBatch`.  Like the value
codecs in ``test_golden_wire.py``, the exact bytes are pinned as literals —
any change to a codec header, the size heuristic or the dictionary/run
layout fails here before it silently shifts the committed traffic figures.

The property tests hammer each codec with the adversarial mixes that
motivated its edge handling: NULL-heavy columns, single-run columns,
all-distinct columns, frame-of-reference spans straddling the delta-width
boundaries, scaled-decimal floats, and the ``1``/``1.0``/``True`` values
that compare equal but must decode back *exactly* (by value and by repr).
"""

import hashlib
import math
import random
import zlib

import pytest

from repro.common.serialization import (
    CODEC_NAMES,
    DictColumn,
    EncodedScanBatch,
    EncodedTupleBatch,
    ForColumn,
    RawColumn,
    RleColumn,
    encode_column_values,
)
from repro.common.types import TupleId, VersionedTuple


def roundtrip_column(column):
    """Encode one column and rebuild it through the batch wire format."""
    batch = EncodedTupleBatch.build(("c0",), [(value,) for value in column])
    rebuilt = EncodedTupleBatch.unmarshal(batch.compressed_payload(), ("c0",))
    (rebuilt_column,) = rebuilt.columns if rebuilt.columns else ((),)
    decoded = rebuilt_column.decode() if rebuilt.columns else []
    return batch, decoded


def assert_exact(decoded, column):
    """Equality that keeps 1 / 1.0 / True and 0.0 / -0.0 apart."""
    assert len(decoded) == len(column)
    for got, want in zip(decoded, column):
        assert type(got) is type(want), (got, want)
        assert repr(got) == repr(want), (got, want)


# ---------------------------------------------------------------------------
# Golden vectors (pinned from the initial implementation)
# ---------------------------------------------------------------------------

#: (column, expected codec class, pinned payload hex).
GOLDEN_COLUMNS = [
    # Dictionary, 1-byte codes: 3 distinct strings over 8 rows.
    (
        ["A", "B", "A", "C", "A", "B", "A", "A"],
        DictColumn,
        "0100030400000001410400000001420400000001430001000200010000",
    ),
    # Run-length: two runs.
    (
        ["x"] * 5 + ["y"] * 3,
        RleColumn,
        "0000000204000000017800050400000001790003",
    ),
    # Frame-of-reference, 1-byte deltas (span 255).
    (
        [1000, 1001, 1003, 1000, 1255],
        ForColumn,
        "0102030003e800010300ff",
    ),
    # Frame-of-reference, 2-byte deltas (span exactly 0xFFFF).
    (
        [10, 10 + 0xFFFF, 500, 11, 12],
        ForColumn,
        "020202000a0000ffff01ea00010002",
    ),
    # Frame-of-reference, 4-byte deltas.
    (
        [100000 + i * 70000 for i in range(8)],
        ForColumn,
        "040204000186a00000000000011170000222e00003345000"
        "0445c000055730000668a000077a10",
    ),
    # Frame-of-reference, 8-byte deltas (span past 0xFFFFFFFF).
    (
        [10**12 + i * (1 << 33) for i in range(16)],
        ForColumn,
        "0802070000e8d4a5100000000000000000000000000200000000000000040000"
        "0000000000060000000000000008000000000000000a000000000000000c0000"
        "00000000000e000000000000001000000000000000120000000000000014000"
        "00000000000160000000000000018000000000000001a000000000000001c00"
        "0000000000001e00000000",
    ),
    # Scaled-decimal frame-of-reference (scale nibble = 2 in the header).
    (
        [3.25, 3.5, 4.75, 3.25, 5.0],
        ForColumn,
        "21020300014500199600af",
    ),
    # Raw fallback: fewer than 4 values never pays for a codec header.
    ([1, 2, 3], RawColumn, "020200010202000202020003"),
    # Raw fallback: mixed types defeat every specialised codec.
    (
        [1, "a", None, 2.5, True, b"x"],
        RawColumn,
        "02020001040000000161000340040000000000000101050000000178",
    ),
    # Cross-type dictionary: 1, 1.0 and True compare equal but are distinct
    # dictionary entries (the _distinct_key invariant).
    (
        [1, 1.0, True, 1, 1.0, True, 1, 1.0],
        DictColumn,
        "01000302020001033ff000000000000001010001020001020001",
    ),
]


class TestGoldenColumnVectors:
    @pytest.mark.parametrize(
        "column, codec, payload_hex",
        GOLDEN_COLUMNS,
        ids=[f"{codec.__name__}-{i}" for i, (_, codec, _) in enumerate(GOLDEN_COLUMNS)],
    )
    def test_payload_pinned_and_roundtrips(self, column, codec, payload_hex):
        encoded = encode_column_values(column)
        assert type(encoded) is codec
        assert encoded.payload().hex() == payload_hex
        assert_exact(encoded.decode(), column)
        _, decoded = roundtrip_column(column)
        assert_exact(decoded, column)

    def test_codec_tags_extend_the_value_namespace(self):
        # Value tags 0-7 are pinned by test_golden_wire; the codec tags live
        # strictly above them so existing vectors can never collide.
        assert sorted(CODEC_NAMES) == [8, 9, 10, 11]
        assert CODEC_NAMES == {8: "dict", 9: "rle", 10: "for", 11: "raw"}

    def test_rle_runs_split_at_65535(self):
        column = ["z"] * 70000
        encoded = encode_column_values(column)
        assert type(encoded) is RleColumn
        assert [length for _, length in encoded.runs] == [0xFFFF, 70000 - 0xFFFF]
        assert encoded.payload().hex() == (
            "0000000204000000017affff04000000017a1171"
        )
        assert encoded.decode() == column

    def test_dict_two_byte_codes(self):
        distinct = [f"value-{i:04d}" for i in range(300)]
        column = distinct * 6
        encoded = encode_column_values(column)
        assert type(encoded) is DictColumn
        assert encoded.code_width == 2
        assert len(encoded.dictionary) == 300
        assert encoded.decode() == column
        _, decoded = roundtrip_column(column)
        assert decoded == column


GOLDEN_BATCH_ROWS = [
    (i, "A" if i % 3 else "B", 10.25 + i) for i in range(8)
]
GOLDEN_BATCH_HEX = (
    "0003000000080a010202000000010203040506070801000204000000014204000000"
    "014100010100010100010a2202030004010000006400c8012c019001f4025802bc"
)


class TestGoldenBatchMarshal:
    def test_marshal_pinned(self):
        batch = EncodedTupleBatch.build(("k", "flag", "price"), GOLDEN_BATCH_ROWS)
        marshalled = batch.marshal()
        assert marshalled.hex() == GOLDEN_BATCH_HEX
        assert (
            hashlib.sha256(marshalled).hexdigest()
            == "43282477bb4f4f70a1a4ebdb15037d8e4947b422c02e3e8797a48128dd613af4"
        )
        assert [type(c) for c in batch.columns] == [ForColumn, DictColumn, ForColumn]

    def test_unmarshal_accepts_compressed_and_bare_payloads(self):
        batch = EncodedTupleBatch.build(("k", "flag", "price"), GOLDEN_BATCH_ROWS)
        for payload in (batch.marshal(), zlib.compress(batch.marshal(), 1)):
            rebuilt = EncodedTupleBatch.unmarshal(payload, ("k", "flag", "price"))
            assert rebuilt.decode_rows() == [tuple(r) for r in GOLDEN_BATCH_ROWS]

    def test_wire_payload_picks_the_smaller_form(self):
        batch = EncodedTupleBatch.build(("k",), [(i,) for i in range(512)])
        wire = batch.compressed_payload()
        assert len(wire) == batch.compressed_size
        assert len(wire) <= batch.raw_size

    def test_empty_and_ragged_batches(self):
        empty = EncodedTupleBatch.build(("a", "b"), [])
        rebuilt = EncodedTupleBatch.unmarshal(empty.compressed_payload(), ("a", "b"))
        assert rebuilt.decode_rows() == []
        zero_arity = EncodedTupleBatch.build((), [(), ()])
        assert zero_arity.decode_rows() == [(), ()]


# ---------------------------------------------------------------------------
# Seeded adversarial property round-trips
# ---------------------------------------------------------------------------


def null_heavy(rng):
    fillers = (None, "flag", 7, 2.5)
    return [
        None if rng.random() < 0.8 else rng.choice(fillers)
        for _ in range(rng.randrange(4, 200))
    ]


def single_run(rng):
    value = rng.choice((None, True, 0, -1, "constant", 3.25, b"\x00\xff", (1, "a")))
    return [value] * rng.randrange(4, 400)


def all_distinct(rng):
    count = rng.randrange(4, 150)
    kind = rng.randrange(3)
    if kind == 0:
        values = list(range(count))
    elif kind == 1:
        values = [f"row-{i}-{rng.randrange(10**6)}" for i in range(count)]
    else:
        values = [float(i) + 0.125 for i in range(count)]
    rng.shuffle(values)
    return values


def for_bit_edges(rng):
    # Spans that straddle the 1/2/4/8-byte delta-width boundaries, with
    # bases up to the int64 limits the encoder accepts.
    span = rng.choice(
        (0, 1, 0xFF, 0x100, 0xFFFF, 0x10000, 0xFFFFFFFF, 0x100000000)
    )
    base = rng.choice((0, -1, 1, -(1 << 63), (1 << 62), rng.randrange(-10**9, 10**9)))
    if base + span >= (1 << 63):
        base = (1 << 63) - 1 - span
    count = rng.randrange(8, 64)
    column = [base + rng.randrange(span + 1) for _ in range(count)]
    column[rng.randrange(count)] = base  # pin the bounds so the span is real
    column[rng.randrange(count)] = base + span
    return column


def decimal_floats(rng):
    return [
        round(rng.randrange(-10**6, 10**6) / 100.0, 2)
        for _ in range(rng.randrange(8, 120))
    ]


def cross_type(rng):
    # Values that compare equal (and hash equal) but must decode distinctly.
    pool = (1, 1.0, True, 0, 0.0, -0.0, False, 2, 2.0)
    return [rng.choice(pool) for _ in range(rng.randrange(4, 200))]


def special_floats(rng):
    # NaN and the infinities defeat the scaled-decimal check; -0.0 must keep
    # its sign bit.  All must still round-trip exactly through the fallback.
    pool = (math.nan, math.inf, -math.inf, -0.0, 0.0, 5e-324, -2.25e300, 1.5)
    return [rng.choice(pool) for _ in range(rng.randrange(4, 100))]


def mixed_soup(rng):
    pool = (None, True, False, -7, 1 << 70, "x", "", b"", b"\x01", (1, (2,)), 0.5)
    return [rng.choice(pool) for _ in range(rng.randrange(1, 150))]


GENERATORS = [
    null_heavy,
    single_run,
    all_distinct,
    for_bit_edges,
    decimal_floats,
    cross_type,
    special_floats,
    mixed_soup,
]


class TestPropertyRoundtrips:
    @pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.__name__)
    @pytest.mark.parametrize("seed", range(6))
    def test_column_roundtrips_exactly(self, generator, seed):
        rng = random.Random(0xC0DEC ^ hash((generator.__name__, seed)))
        for _ in range(8):
            column = generator(rng)
            encoded = encode_column_values(column)
            decoded = encoded.decode()
            # NaN != NaN, so exactness is by type + repr throughout.
            assert_exact(decoded, column)
            _, rebuilt = roundtrip_column(column)
            assert_exact(rebuilt, column)

    @pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.__name__)
    def test_decode_positions_matches_decode(self, generator):
        rng = random.Random(0xBEEF ^ hash(generator.__name__))
        for _ in range(6):
            column = generator(rng)
            encoded = encode_column_values(column)
            full = encoded.decode()
            positions = sorted(
                rng.sample(range(len(column)), rng.randrange(0, len(column) + 1))
            )
            assert_exact(
                encoded.decode_positions(positions), [full[i] for i in positions]
            )

    def test_special_floats_never_pick_scaled_for(self):
        for column in ([math.nan] * 8, [math.inf, 1.0, 2.0, 3.0], [-0.0, 0.25, 0.5, 1.0]):
            encoded = encode_column_values(column)
            assert not (isinstance(encoded, ForColumn) and encoded.scale)

    def test_min_max_bounds_are_sound(self):
        rng = random.Random(0x1234)
        for generator in GENERATORS:
            for _ in range(4):
                column = generator(rng)
                encoded = encode_column_values(column)
                bounds = encoded.min_max()
                if bounds is None:
                    continue
                lo, hi = bounds
                for value in encoded.decode():
                    assert lo <= value <= hi

    def test_match_positions_agree_with_row_at_a_time(self):
        rng = random.Random(0x5EED)
        for generator in (null_heavy, single_run, all_distinct, cross_type):
            for _ in range(6):
                column = generator(rng)
                probe = rng.choice(column)

                def test_fn(value, probe=probe):
                    if value is None or probe is None:
                        return False
                    try:
                        return bool(value == probe)
                    except TypeError:
                        return False

                encoded = encode_column_values(column)
                matched = encoded.match_positions(test_fn)
                if matched is None:
                    continue  # undecidable (raw) — caller decodes instead
                expected = [i for i, v in enumerate(column) if test_fn(v)]
                assert matched == expected


class TestScanBatchRoundtrip:
    def test_versioned_tuples_roundtrip_with_deletions(self):
        tuples = [
            VersionedTuple(
                "R",
                TupleId((f"k{i}",), 3),
                (i, f"name-{i % 4}", 1.25 * i),
                deleted=(i % 5 == 0),
            )
            for i in range(40)
        ]
        batch = EncodedScanBatch.from_tuples(tuples)
        assert batch.decode_tuples() == tuples
        positions = [1, 5, 17, 39]
        assert batch.decode_tuples_at(positions) == [tuples[i] for i in positions]
        assert batch.stored_size() >= 64 + EncodedScanBatch.ID_BYTES * len(tuples)
