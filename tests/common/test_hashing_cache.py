"""The bounded sha1_key memo: correctness of the type-aware cache key.

Python equality conflates values the wire hashing deliberately
distinguishes (``1 == True == 1.0``, ``-0.0 == 0.0``); a naive value-keyed
memo would hand one digest to all of them.  These tests pin the injectivity
of the cache key, the bound, and equality of cached results with fresh
computation.
"""

import hashlib

from repro.common import hashing
from repro.common.hashing import (
    SHA1_CACHE_MAX,
    clear_sha1_cache,
    sha1_cache_size,
    sha1_key,
)


def fresh_digest(value):
    """Reference digest computed without the memo."""
    return int.from_bytes(hashlib.sha1(hashing._to_bytes(value)).digest(), "big")


def test_equal_but_distinct_values_get_distinct_digests():
    clear_sha1_cache()
    groups = [
        (1, True, 1.0),
        (0, False, 0.0, -0.0),
        (("x", 1), ("x", True), ("x", 1.0)),
    ]
    for group in groups:
        digests = [sha1_key(v) for v in group]
        # All group members compare equal in Python...
        assert all(a == b for a in group for b in group)
        # ...but hash to pairwise-distinct ring positions.
        assert len(set(digests)) == len(group), group
        # And every memoised result equals the uncached computation.
        for value, digest in zip(group, digests):
            assert digest == fresh_digest(value)
            assert sha1_key(value) == digest  # cache hit, same answer


def test_lists_and_tuples_share_a_digest():
    clear_sha1_cache()
    assert sha1_key(["a", 1, None]) == sha1_key(("a", 1, None))


def test_nested_structures_roundtrip_through_the_cache():
    clear_sha1_cache()
    values = [
        ("tuple", ("k", 7)),
        ("tuple", ("k", 7.0)),
        ("node", "host-3"),
        (b"\x00", ("nested", (None, False))),
        -0.0,
        0.0,
        float("inf"),
        2**200,
    ]
    first = [sha1_key(v) for v in values]
    again = [sha1_key(v) for v in values]
    assert first == again
    assert first == [fresh_digest(v) for v in values]


def test_unhashable_input_raises_like_before():
    import pytest

    with pytest.raises(TypeError):
        sha1_key(({"a": 1},))


def test_cache_is_bounded():
    clear_sha1_cache()
    for index in range(SHA1_CACHE_MAX + 500):
        sha1_key(("bound-test", index))
    assert sha1_cache_size() <= SHA1_CACHE_MAX
    # Entries surviving the eviction still answer correctly.
    probe = ("bound-test", SHA1_CACHE_MAX + 499)
    assert sha1_key(probe) == fresh_digest(probe)
    clear_sha1_cache()
    assert sha1_cache_size() == 0
