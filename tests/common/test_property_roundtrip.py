"""Seeded property-style round-trip tests for serialization and hashing.

Randomized payloads — unicode (including astral planes), deep nesting, empty
collections, huge integers, special floats — are generated from a fixed seed
so every failure replays exactly.  These tests surfaced (and now pin) a real
round-trip bug: integers wider than 255 bytes overflowed ``_TAG_INT``'s
one-byte length field; they are carried by the ``_TAG_BIGINT`` encoding.
"""

import math
import random

import pytest

from repro.common.hashing import (
    KEY_SPACE_SIZE,
    KeyRange,
    ranges_partition_ring,
    sha1_key,
)
from repro.common.serialization import (
    TupleBatch,
    decode_value,
    decode_values,
    encode_value,
    encode_values,
)

ALPHABETS = (
    "abcdefghijklmnop",
    "äöüßéèêñçøå",
    "московский",
    "情報統合思念体",
    "🜁🜂🜃🜄𝔘𝔫𝔦𝔠𝔬𝔡𝔢🚀",
)


def random_scalar(rng: random.Random, *, big: bool = True):
    kind = rng.randrange(8)
    if kind == 0:
        return None
    if kind == 1:
        return rng.random() < 0.5
    if kind == 2:
        return rng.randint(-(10 ** rng.randrange(1, 19)), 10 ** rng.randrange(1, 19))
    if kind == 3 and big:
        # Wider than 255 bytes two's-complement: the _TAG_BIGINT regression.
        magnitude = rng.randrange(2040, 4200)
        return rng.choice((-1, 1)) * (1 << magnitude) + rng.randrange(1 << 64)
    if kind == 4:
        return rng.choice(
            (0.0, -0.0, 1.5, -2.25e300, 5e-324, math.inf, -math.inf)
        ) * rng.choice((1, rng.random() + 0.1))
    if kind == 5:
        alphabet = rng.choice(ALPHABETS)
        return "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 24)))
    if kind == 6:
        return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 32)))
    return rng.randrange(1000)


def random_value(rng: random.Random, depth: int = 0):
    if depth < 3 and rng.random() < 0.25:
        return tuple(
            random_value(rng, depth + 1) for _ in range(rng.randrange(0, 5))
        )
    return random_scalar(rng)


def values_equal(left, right) -> bool:
    if isinstance(left, tuple) and isinstance(right, tuple):
        return len(left) == len(right) and all(
            values_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) or math.isnan(right):
            return math.isnan(left) and math.isnan(right)
        return left == right and math.copysign(1, left) == math.copysign(1, right)
    if type(left) is not type(right):
        return False
    return left == right


class TestValueRoundTrip:
    @pytest.mark.parametrize("seed", range(12))
    def test_single_values_round_trip(self, seed):
        rng = random.Random(seed)
        for case in range(150):
            value = random_value(rng)
            decoded, consumed = decode_value(encode_value(value))
            assert values_equal(decoded, value), f"seed={seed} case={case}: {value!r}"
            assert consumed == len(encode_value(value))

    def test_huge_integers_round_trip(self):
        # The regression pinned explicitly: ±(2**2040 + k) needs > 255 bytes.
        for value in (1 << 2040, -(1 << 2040) - 12345, (1 << 4096) + 7):
            decoded, _ = decode_value(encode_value(value))
            assert decoded == value

    def test_boundary_integers_keep_the_compact_encoding(self):
        # Up to 255 encoded bytes the original tag (and wire size) is used.
        boundary = (1 << 2031) - 1  # 2032 bits -> 255 bytes two's-complement
        assert encode_value(boundary)[0] == 2  # _TAG_INT
        assert decode_value(encode_value(boundary))[0] == boundary
        assert encode_value(boundary + 1)[0] == 7  # _TAG_BIGINT

    def test_nan_round_trips(self):
        decoded, _ = decode_value(encode_value(math.nan))
        assert math.isnan(decoded)

    @pytest.mark.parametrize("seed", range(6))
    def test_rows_round_trip(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(60):
            row = tuple(random_value(rng) for _ in range(rng.randrange(0, 8)))
            decoded, _ = decode_values(encode_values(row))
            assert values_equal(decoded, row)

    def test_empty_collections(self):
        assert decode_value(encode_value(()))[0] == ()
        assert decode_values(encode_values(()))[0] == ()
        assert decode_value(encode_value(""))[0] == ""
        assert decode_value(encode_value(b""))[0] == b""


class TestTupleBatchRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_batches_round_trip_through_compression(self, seed):
        rng = random.Random(2000 + seed)
        arity = rng.randrange(1, 6)
        attributes = [f"a{i}" for i in range(arity)]
        rows = [
            tuple(random_scalar(rng, big=False) for _ in range(arity))
            for _ in range(rng.randrange(0, 40))
        ]
        batch = TupleBatch.build(attributes, rows)
        rebuilt = TupleBatch.unmarshal(batch.compressed_payload())
        assert rebuilt.attributes == tuple(attributes)
        assert len(rebuilt.rows) == len(rows)
        for original, round_tripped in zip(rows, rebuilt.rows):
            assert values_equal(round_tripped, original)

    def test_empty_batch(self):
        batch = TupleBatch.build(("x", "y"), [])
        rebuilt = TupleBatch.unmarshal(batch.compressed_payload())
        assert rebuilt.rows == [] and rebuilt.attributes == ("x", "y")


class TestHashingProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_deterministic_and_in_range(self, seed):
        rng = random.Random(3000 + seed)
        for _ in range(100):
            value = random_value(rng)
            try:
                key = sha1_key(value)
            except TypeError:
                continue  # floats inside are fine; only unhashable kinds skip
            assert 0 <= key < KEY_SPACE_SIZE
            assert sha1_key(value) == key

    def test_composite_boundaries_hash_differently(self):
        assert sha1_key(("ab", "c")) != sha1_key(("a", "bc"))
        assert sha1_key(("", "a")) != sha1_key(("a", ""))
        assert sha1_key((1,)) != sha1_key(("1",))
        assert sha1_key(True) != sha1_key(1)
        assert sha1_key(None) != sha1_key("")

    def test_lists_and_tuples_hash_identically(self):
        assert sha1_key(["a", 1, None]) == sha1_key(("a", 1, None))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_splits_partition_the_ring(self, seed):
        rng = random.Random(4000 + seed)
        pieces = KeyRange.full_ring(rng.randrange(KEY_SPACE_SIZE)).split(
            rng.randrange(1, 40)
        )
        assert ranges_partition_ring(pieces)
        for piece in pieces:
            for key in piece.keys_sample(3):
                assert piece.contains(key)
                assert sum(1 for other in pieces if other.contains(key)) == 1
