"""Golden wire-format vectors pinned against the original recursive codecs.

The paper's traffic figures (Figs 8-20) depend on the *exact* compressed size
of every batch on the wire, so the serialization fast paths must be
byte-identical to the original per-value recursive encoder.  These vectors
were generated with the pre-optimisation implementation and are pinned as
literals: any codec change that alters a single wire byte fails here before
it silently shifts every traffic figure.

Covers every type tag, the one-byte-length integer boundaries around
``_TAG_INT``/``_TAG_BIGINT`` (encodings of exactly 255 vs 256 bytes), the
row-level ``encode_values`` framing and the column-wise ``TupleBatch``
marshal layout.
"""

import hashlib
import zlib

import pytest

from repro.common.serialization import (
    TupleBatch,
    decode_value,
    decode_values,
    encode_value,
    encode_values,
)

#: (value, hex of the pinned wire encoding) — generated pre-optimisation.
GOLDEN_VALUES = [
    (None, "00"),
    (True, "0101"),
    (False, "0100"),
    (0, "02020000"),
    (1, "02020001"),
    (-1, "0202ffff"),
    (127, "0202007f"),
    (128, "0203000080"),
    (255, "02030000ff"),
    (256, "0203000100"),
    (-128, "0203ffff80"),
    (-129, "0203ffff7f"),
    (65536, "020400010000"),
    (2**63 - 1, "0209007fffffffffffffff"),
    (-(2**63), "020affff8000000000000000"),
    (3.5, "03400c000000000000"),
    (-0.0, "038000000000000000"),
    (1e308, "037fe1ccf385ebc8a0"),
    ("", "0400000000"),
    ("héllo", "040000000668c3a96c6c6f"),
    ("abc", "0400000003616263"),
    (b"", "0500000000"),
    (b"\x00\x01\xff", "05000000030001ff"),
    ((), "0600000000"),
    ((1, "a", None), "06000000030202000104000000016100"),
    ((1, (2, (3,))), "060000000202020001060000000202020002060000000102020003"),
]

#: Big integers around the _TAG_INT one-byte-length limit: (value, pinned
#: 6-byte encoding prefix, pinned total length, sha256 of the encoding).
GOLDEN_BIGINTS = [
    # bit_length 2031 -> 255 payload bytes: the largest _TAG_INT encoding.
    (2**2030, "02ff00400000", 257,
     "a92f395573178b8bf421fda65bd0516ec4ac8ffb54dc14aea1d5e3b76802cff5"),
    # bit_length 2032 -> 256 payload bytes: the smallest _TAG_BIGINT.
    (2**2031, "070000010000", 261,
     "fdac748371e994b3d401e3d27c3a7de3a2f3d29f12746dcded4f5e6a21626492"),
    (-(2**2031), "0700000100ff", 261,
     "37e0b6a0af603592df1896502cb74b0aaf1e8cc9f1bbe769921c5a554287ac4a"),
    (-(2**2032), "0700000100ff", 261,
     "e018ff8906c6001e028bea978ba88d80a73b61c02923a410cd342205dee30aef"),
    (2**4096 + 12345, "070000020200", 519,
     "b6d5fc3e3ee2325c79b5ed9ffd4f2d1af9b09095214393b3ddbae9f1e34814ae"),
]

GOLDEN_ROW = (42, "order-42", 3.25, None, True, b"\x01")
GOLDEN_ROW_HEX = (
    "000000060202002a04000000086f726465722d343203400a0000000000000001"
    "01050000000101"
)

BATCH_ATTRIBUTES = ("id", "name", "qty", "price")
BATCH_ROWS = [
    (1, "alpha", 3, 9.75),
    (2, "beta", 1, 0.5),
    (3, "alpha", 7, 120.0),
    (4, None, 0, -2.25),
]
BATCH_MARSHAL_HEX = (
    "00000004000000040002696400046e616d6500037174790005707269636502020001"
    "0202000202020003020200040400000005616c7068610400000004626574610400000005"
    "616c7068610002020003020200010202000702020000034023800000000000033fe00000"
    "0000000003405e00000000000003c002000000000000"
)
BATCH_RAW_SIZE = 128


@pytest.mark.parametrize("value,expected_hex", GOLDEN_VALUES,
                         ids=[repr(v)[:40] for v, _ in GOLDEN_VALUES])
def test_encode_value_golden(value, expected_hex):
    assert encode_value(value).hex() == expected_hex


@pytest.mark.parametrize("value,expected_hex", GOLDEN_VALUES,
                         ids=[repr(v)[:40] for v, _ in GOLDEN_VALUES])
def test_decode_value_golden(value, expected_hex):
    decoded, offset = decode_value(bytes.fromhex(expected_hex))
    assert offset == len(expected_hex) // 2
    assert decoded == value
    assert type(decoded) is type(value)


@pytest.mark.parametrize("value,prefix,length,sha", GOLDEN_BIGINTS,
                         ids=[f"bits{v.bit_length()}" if v > 0 else
                              f"neg-bits{(-v).bit_length()}"
                              for v, _, _, _ in GOLDEN_BIGINTS])
def test_bigint_edges_golden(value, prefix, length, sha):
    encoded = encode_value(value)
    assert encoded[:6].hex() == prefix
    assert len(encoded) == length
    assert hashlib.sha256(encoded).hexdigest() == sha
    decoded, offset = decode_value(encoded)
    assert decoded == value and offset == length


def test_int_tag_boundary():
    """255-byte encodings stay _TAG_INT; 256 bytes switch to _TAG_BIGINT."""
    largest_int_tag = 2**2030          # encodes to exactly 255 payload bytes
    smallest_bigint_tag = 2**2031      # encodes to exactly 256 payload bytes
    assert encode_value(largest_int_tag)[0] == 2
    assert encode_value(largest_int_tag)[1] == 255
    assert encode_value(smallest_bigint_tag)[0] == 7


def test_encode_values_golden():
    assert encode_values(GOLDEN_ROW).hex() == GOLDEN_ROW_HEX
    decoded, offset = decode_values(bytes.fromhex(GOLDEN_ROW_HEX))
    assert decoded == GOLDEN_ROW
    assert offset == len(GOLDEN_ROW_HEX) // 2


def test_tuple_batch_marshal_golden():
    """The column-wise marshal layout is pinned byte for byte."""
    batch = TupleBatch.build(BATCH_ATTRIBUTES, BATCH_ROWS)
    marshal = TupleBatch._marshal(BATCH_ATTRIBUTES, batch.rows)
    assert marshal.hex() == BATCH_MARSHAL_HEX
    assert batch.raw_size == BATCH_RAW_SIZE


def test_tuple_batch_compression_consistency():
    """wire accounting == zlib level 1 of the pinned marshal, and the
    compressed payload round-trips to the identical batch."""
    batch = TupleBatch.build(BATCH_ATTRIBUTES, BATCH_ROWS)
    marshal = bytes.fromhex(BATCH_MARSHAL_HEX)
    assert batch.compressed_size == len(zlib.compress(marshal, 1))
    payload = batch.compressed_payload()
    assert zlib.decompress(payload) == marshal
    rebuilt = TupleBatch.unmarshal(payload)
    assert rebuilt.attributes == BATCH_ATTRIBUTES
    assert rebuilt.rows == BATCH_ROWS
    assert rebuilt.raw_size == batch.raw_size
    assert rebuilt.compressed_size == batch.compressed_size


def test_tuple_batch_empty_and_single_column():
    """Framing edges: zero rows, one column, and a None-only column."""
    empty = TupleBatch.build(("a", "b"), [])
    assert TupleBatch._marshal(("a", "b"), []).hex() == (
        "0000000200000000000161000162"
    )
    assert empty.raw_size == 14
    nones = TupleBatch.build(("x",), [(None,), (None,)])
    assert TupleBatch._marshal(("x",), nones.rows).hex() == (
        "000000010000000200017800 00".replace(" ", "")
    )


def test_heterogeneous_column_matches_value_encoder():
    """A column mixing every tag must equal per-value encoding exactly —
    the fast path's per-column dispatch may not change mixed columns."""
    import struct

    rows = [(v,) for v, _ in GOLDEN_VALUES] + [(v,) for v, _, _, _ in GOLDEN_BIGINTS]
    marshal = TupleBatch._marshal(("mixed",), [tuple(r) for r in rows])
    header = struct.pack(">II", 1, len(rows)) + b"\x00\x05mixed"
    body = b"".join(encode_value(r[0]) for r in rows)
    assert marshal == header + body
