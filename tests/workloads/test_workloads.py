"""Tests for the STBenchmark and TPC-H workload generators."""

import pytest

from repro.cluster import Cluster
from repro.query.reference import evaluate_query, normalise
from repro.workloads import stbenchmark, tpch


class TestSTBenchmarkGenerator:
    def test_all_scenarios_generate(self):
        instances = stbenchmark.generate_all(tuples_per_relation=50, seed=1)
        assert set(instances) == set(stbenchmark.SCENARIOS)
        for instance in instances.values():
            assert instance.total_tuples() > 0
            assert instance.query.name.startswith("stb_")

    def test_deterministic_for_same_seed(self):
        a = stbenchmark.generate("copy", 20, seed=7)
        b = stbenchmark.generate("copy", 20, seed=7)
        assert a.relations["CopySource"].rows == b.relations["CopySource"].rows

    def test_copy_has_seven_attributes(self):
        instance = stbenchmark.generate("copy", 10)
        assert instance.relations["CopySource"].schema.arity == 7

    def test_join_arities_match_paper(self):
        instance = stbenchmark.generate("join", 10)
        arities = sorted(data.schema.arity for data in instance.relations.values())
        assert arities == [5, 7, 9]

    def test_select_predicate_filters_about_half(self):
        instance = stbenchmark.generate("select", 400, seed=3)
        expected = evaluate_query(instance.query, instance.relations)
        assert 0.3 * 400 < len(expected) < 0.7 * 400

    def test_strings_are_wide(self):
        instance = stbenchmark.generate("copy", 20, seed=2)
        row = instance.relations["CopySource"].rows[0]
        assert any(isinstance(v, str) and len(v) >= 15 for v in row[1:])

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            stbenchmark.generate("nope", 10)

    @pytest.mark.parametrize("scenario", stbenchmark.SCENARIOS)
    def test_scenarios_run_on_cluster_and_match_oracle(self, scenario):
        instance = stbenchmark.generate(scenario, tuples_per_relation=60, seed=5)
        cluster = Cluster(4)
        cluster.publish_relations(instance.relation_list())
        result = cluster.query(instance.query)
        expected = evaluate_query(instance.query, instance.relations)
        assert normalise(result.rows) == normalise(expected)


class TestTpchGenerator:
    def test_all_tables_generated(self):
        instance = tpch.generate(scale_factor=0.5, seed=1)
        assert set(instance.relations) == set(tpch.SCHEMAS)
        assert instance.row_count("region") == 5
        assert instance.row_count("nation") == 25

    def test_cardinality_ratios(self):
        instance = tpch.generate(scale_factor=1.0, seed=1)
        assert instance.row_count("lineitem") > instance.row_count("orders")
        assert instance.row_count("orders") > instance.row_count("customer")
        assert instance.row_count("customer") > instance.row_count("supplier")

    def test_scale_factor_scales_rows(self):
        small = tpch.generate(scale_factor=0.5, seed=1)
        large = tpch.generate(scale_factor=2.0, seed=1)
        ratio = large.row_count("orders") / small.row_count("orders")
        assert 3.0 < ratio < 5.0

    def test_foreign_keys_are_valid(self):
        instance = tpch.generate(scale_factor=0.5, seed=2)
        customers = {row[0] for row in instance.relations["customer"].rows}
        orders = instance.relations["orders"].rows
        assert all(row[1] in customers for row in orders)
        order_keys = {row[0] for row in orders}
        assert all(row[0] in order_keys for row in instance.relations["lineitem"].rows)

    def test_dates_are_in_range(self):
        instance = tpch.generate(scale_factor=0.25, seed=3)
        for row in instance.relations["orders"].rows:
            assert 19920101 <= row[4] <= 19981231

    def test_query_builders(self):
        for name in tpch.QUERIES:
            query = tpch.query(name)
            assert query.name == name
        with pytest.raises(ValueError):
            tpch.query("Q99")

    @pytest.mark.parametrize("name", ["Q1", "Q6"])
    def test_aggregation_queries_match_oracle_on_cluster(self, name):
        instance = tpch.generate(scale_factor=0.25, seed=4)
        cluster = Cluster(4)
        cluster.publish_relations(instance.relation_list())
        query = tpch.query(name)
        result = cluster.query(query)
        expected = evaluate_query(query, instance.relations)
        assert normalise(result.rows) == normalise(expected)

    @pytest.mark.parametrize("name", ["Q3", "Q5", "Q10"])
    def test_join_queries_match_oracle_on_cluster(self, name):
        instance = tpch.generate(scale_factor=0.25, seed=4)
        cluster = Cluster(4)
        cluster.publish_relations(instance.relation_list())
        query = tpch.query(name)
        result = cluster.query(query)
        expected = evaluate_query(query, instance.relations)
        assert normalise(result.rows) == normalise(expected)
