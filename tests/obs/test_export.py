"""Chrome-trace export: schema, nesting validation, and file round-trips."""

import json

from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span


def span(span_id, parent_id=None, trace_id=1, begin=0.001, end=0.002,
         node="a", name="query.data", bytes=100):
    return Span(
        trace_id=trace_id, span_id=span_id, parent_id=parent_id, name=name,
        node=node, begin=begin, end=end, src=node, dst="b", bytes=bytes,
        delivered=True,
    )


class TestChromeTrace:
    def test_events_carry_virtual_microseconds(self):
        document = chrome_trace([span(1, begin=0.5, end=0.75)])
        (event,) = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert event["ts"] == 0.5 * 1e6
        assert event["dur"] == 0.25 * 1e6
        assert event["args"]["bytes"] == 100

    def test_one_process_per_node_with_name_metadata(self):
        document = chrome_trace([span(1, node="a"), span(2, node="b")])
        names = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in names} == {"a", "b"}
        pids = {e["pid"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 2

    def test_valid_tree_passes_validation(self):
        document = chrome_trace([span(1), span(2, parent_id=1, begin=0.0015)])
        assert validate_chrome_trace(document) == []

    def test_orphan_parent_is_reported(self):
        document = chrome_trace([span(2, parent_id=99)])
        errors = validate_chrome_trace(document)
        assert any("orphan" in error for error in errors)

    def test_child_starting_before_parent_is_reported(self):
        document = chrome_trace([span(1, begin=0.002), span(2, parent_id=1, begin=0.001)])
        errors = validate_chrome_trace(document)
        assert errors

    def test_undelivered_span_renders_zero_width(self):
        undelivered = span(1)
        undelivered.end = None
        undelivered.delivered = False
        document = chrome_trace([undelivered])
        (event,) = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert event["dur"] == 0
        assert event["args"]["delivered"] is False
        assert validate_chrome_trace(document) == []


class TestFiles:
    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, [span(1), span(2, parent_id=1, begin=0.0015)])
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(document) == []

    def test_write_metrics_serialises_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("rpc.bytes").inc(7, kind="query.data")
        path = tmp_path / "metrics.json"
        write_metrics(path, registry)
        document = json.loads(path.read_text())
        assert document["metrics"]["rpc.bytes{kind=query.data}"] == 7
