"""Tracing semantics: honest byte accounting, faults, and byte identity.

The load-bearing guarantees:

* tracing is **off by default** and, when off, leaves every wire byte
  untouched (golden vectors and the traffic gate rely on this);
* when on, span byte totals reconcile with the traffic meter even under
  packet loss and duplication — retries and duplicate deliveries annotate
  the one span for the logical message instead of inventing new ones;
* a crash-restarted node starts fresh traces under its new incarnation
  rather than re-parenting onto its previous life's spans.
"""

import pytest

from repro.faults.injector import FaultInjector, LinkChaos
from repro.net.simnet import HostSpec, Message, Network
from repro.obs.trace import CONTEXT_WIRE_BYTES, Tracer


def make_pair(with_injector=False, seed=7):
    net = Network(latency=0.001, default_host=HostSpec(
        egress_bandwidth=1_000_000.0, ingress_bandwidth=1_000_000.0))
    a = net.add_node("a")
    b = net.add_node("b")
    injector = FaultInjector(net, seed=seed) if with_injector else None
    return net, a, b, injector


class TestDefaults:
    def test_tracing_is_off_by_default(self):
        net, a, b, _ = make_pair()
        assert net.tracer is None
        received = []
        b.register_handler("app", received.append)
        a.send("b", "app", {"x": 1}, 100)
        net.run()
        (message,) = received
        # No trace context, no context bytes: the wire size is exactly
        # payload + fixed overhead, as every golden vector expects.
        assert message.trace is None
        assert message.size == 100 + Network.MESSAGE_OVERHEAD_BYTES

    def test_message_repr_includes_kind_and_sent_at(self):
        message = Message("rpc.cast", "a", "b", {"method": "query.data"},
                          140, sent_at=1.25, kind="query.data")
        rendered = repr(message)
        assert "kind='query.data'" in rendered
        assert "sent_at=1.250000" in rendered

    def test_traced_remote_send_charges_context_bytes(self):
        net, a, b, _ = make_pair()
        net.tracer = Tracer()
        received = []
        b.register_handler("app", received.append)
        a.send("b", "app", {"x": 1}, 100)
        net.run()
        (message,) = received
        assert message.trace is not None
        assert message.size == (
            100 + Network.MESSAGE_OVERHEAD_BYTES + CONTEXT_WIRE_BYTES
        )

    def test_traced_local_send_stays_free(self):
        net, a, _, _ = make_pair()
        net.tracer = Tracer()
        received = []
        a.register_handler("app", received.append)
        a.send("a", "app", {}, 100)
        net.run()
        assert received[0].size == 100 + Network.MESSAGE_OVERHEAD_BYTES


class TestParenting:
    def test_handler_sends_become_children(self):
        net, a, b, _ = make_pair()
        tracer = net.tracer = Tracer()

        def forward(message):
            b.send("a", "reply", {}, 10)

        b.register_handler("app", forward)
        a.register_handler("reply", lambda message: None)
        a.send("b", "app", {}, 10)
        net.run()
        request, reply = tracer.all_spans()
        assert reply.trace_id == request.trace_id
        assert reply.parent_id == request.span_id
        assert request.delivered and reply.delivered
        assert request.end is not None and reply.begin >= request.begin

    def test_spontaneous_sends_open_fresh_traces(self):
        net, a, b, _ = make_pair()
        tracer = net.tracer = Tracer()
        b.register_handler("app", lambda message: None)
        a.send("b", "app", {}, 10)
        a.send("b", "app", {}, 10)
        net.run()
        first, second = tracer.all_spans()
        assert first.trace_id != second.trace_id
        assert first.parent_id is None and second.parent_id is None


class TestFaultAccounting:
    def test_lossy_link_keeps_one_span_and_reconciles_bytes(self):
        net, a, b, injector = make_pair(with_injector=True)
        tracer = net.tracer = Tracer()
        injector.set_link_chaos("a", "b", LinkChaos(drop=0.5, duplicate=0.3))
        b.register_handler("app", lambda message: None)
        for index in range(20):
            a.send("b", "app", {"i": index}, 50)
        net.run()
        spans = tracer.all_spans()
        # One span per logical message, however many times it hit the wire.
        assert len(spans) == 20
        assert all(span.delivered for span in spans)
        assert injector.stats.retransmits > 0  # the seed produced losses
        assert injector.stats.deduplicated > 0  # ... and duplicate deliveries
        assert sum(span.retransmits for span in spans) == injector.stats.retransmits
        assert sum(span.duplicates for span in spans) == injector.stats.deduplicated
        # Every metered transmission (including lost copies) landed on a span.
        assert sum(span.bytes for span in spans) == net.traffic.total_bytes

    def test_abandoned_message_span_stays_open(self):
        net, a, b, injector = make_pair(with_injector=True)
        injector.max_retransmits = 2
        tracer = net.tracer = Tracer()
        injector.set_link_chaos("a", "b", LinkChaos(drop=1.0))
        b.register_handler("app", lambda message: None)
        a.send("b", "app", {}, 50)
        net.run()
        (span,) = tracer.all_spans()
        assert not span.delivered and span.end is None
        assert span.bytes == net.traffic.total_bytes > 0


class TestCrashRestart:
    def test_restarted_node_starts_fresh_traces(self):
        net, a, b, _ = make_pair(with_injector=True)
        tracer = net.tracer = Tracer()
        b.register_handler("app", lambda message: None)
        a.register_handler("app", lambda message: None)
        a.send("b", "app", {}, 50)  # in flight when b dies
        net.fail_node("b")
        net.run()
        dead = tracer.all_spans()[0]
        assert not dead.delivered  # the incarnation guard discarded it
        restarted = net.restart_node("b")
        assert restarted.incarnation == 1
        restarted.send("a", "app", {}, 50)
        net.run()
        fresh = tracer.all_spans()[-1]
        assert fresh.incarnation == 1
        # The new life is a new trace: nothing re-parents onto the old spans.
        assert fresh.trace_id != dead.trace_id
        assert fresh.parent_id is None
        assert fresh.delivered


class TestClusterByteIdentity:
    @pytest.fixture(scope="class")
    def workload(self):
        def run(traced):
            from repro.cluster import Cluster
            from repro.common.types import RelationData, Schema

            cluster = Cluster(3, replication_factor=2)
            if traced:
                cluster.enable_tracing()
            schema = Schema("obs_rel", ["k", "v"], key=["k"])
            data = RelationData(schema)
            for index in range(30):
                data.add(f"k{index}", index)
            cluster.publish_relations([data])
            retrieval = cluster.retrieve("obs_rel")
            snapshot = cluster.network.traffic.snapshot()
            return sorted(tuple(r) for r in retrieval.rows()), snapshot

        return run

    def test_results_identical_and_traced_bytes_fully_explained(self, workload):
        plain_rows, plain = workload(traced=False)
        traced_rows, traced = workload(traced=True)
        assert traced_rows == plain_rows
        # Fault-free runs send the same messages; tracing adds exactly the
        # propagated context per remote message and nothing else.
        assert traced.total_messages == plain.total_messages
        assert traced.total_bytes == (
            plain.total_bytes + CONTEXT_WIRE_BYTES * plain.total_messages
        )
