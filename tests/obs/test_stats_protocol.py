"""The common stats surface: ``to_dict()`` everywhere, zero-free deltas."""

from repro.cache.stats import CacheStats
from repro.faults.injector import FaultStats
from repro.net.simnet import TrafficMeter
from repro.obs.metrics import SupportsToDict, format_series
from repro.query.service import QueryStatistics
from repro.runtime.scheduler import SchedulerStats


class TestToDictProtocol:
    def test_every_stats_object_speaks_to_dict(self):
        for stats in (
            TrafficMeter(),
            SchedulerStats(),
            CacheStats(),
            FaultStats(),
            QueryStatistics(started_at=0.0),
        ):
            assert isinstance(stats, SupportsToDict)
            document = stats.to_dict()
            assert isinstance(document, dict) and document

    def test_snapshot_to_dict_matches_delta_shape(self):
        meter = TrafficMeter()
        meter.record("a", "b", 100, "query.data")
        snapshot = meter.snapshot()
        assert snapshot.to_dict()["total_bytes"] == 100
        assert meter.to_dict() == snapshot.to_dict()


class TestDeltaDropsZeroes:
    def test_unchanged_kinds_disappear_from_delta(self):
        meter = TrafficMeter()
        meter.record("a", "b", 100, "query.data")
        meter.record("a", "b", 50, "query.eos")
        before = meter.snapshot()
        meter.record("a", "c", 70, "query.data")
        delta = before.delta(meter.snapshot())
        # query.eos did not move in the window: it must not appear at all.
        assert delta.bytes_by_kind == {"query.data": 70}
        assert delta.messages_by_kind == {"query.data": 1}
        assert delta.bytes_sent == {"a": 70}
        assert delta.bytes_received == {"c": 70}

    def test_empty_window_has_empty_dicts(self):
        meter = TrafficMeter()
        meter.record("a", "b", 100, "query.data")
        snapshot = meter.snapshot()
        delta = snapshot.delta(meter.snapshot())
        assert delta.total_bytes == 0
        assert delta.bytes_by_kind == {}
        assert delta.bytes_sent == {}


class TestMetricSeries:
    def test_traffic_meter_uses_uniform_naming(self):
        meter = TrafficMeter()
        meter.record("a", "b", 100, "query.data")
        names = {
            format_series(name, tags) for name, tags, _ in meter.metric_series()
        }
        assert "rpc.bytes" in names
        assert "rpc.bytes{kind=query.data}" in names
        assert "rpc.bytes{direction=sent,node=a}" in names

    def test_scheduler_stats_tag_initiators(self):
        stats = SchedulerStats()
        stats.submitted = 3
        stats.admitted_by_initiator["node-0"] = 2
        names = {
            format_series(name, tags) for name, tags, _ in stats.metric_series()
        }
        assert "scheduler.submitted" in names
        assert "scheduler.admitted{initiator=node-0}" in names

    def test_cache_stats_tag_tiers(self):
        stats = CacheStats()
        stats.hits += 1
        names = {
            format_series(name, tags) for name, tags, _ in stats.metric_series("node")
        }
        assert "cache.hits{tier=node}" in names
