"""Tracing under chaos: invariant outcomes are unchanged, failures dump traces.

A traced run charges the propagated context onto every remote message, so it
is a *different* deterministic schedule than the untraced run of the same
seed — timings and retry counts may differ.  What must not differ is the
verdict: every invariant that holds untraced holds traced, across a seed
sweep.  And when an invariant does fail, the runner dumps a valid
Chrome-trace of the failing window for the postmortem.
"""

import json
import os

import pytest

from repro.faults.scenarios import ScenarioConfig, ScenarioRunner, run_scenario
from repro.obs.export import validate_chrome_trace

SEED_COUNT = int(os.environ.get("CHAOS_TRACING_SEEDS", "6"))


class TestOutcomeEquivalence:
    @pytest.mark.parametrize("seed", range(SEED_COUNT))
    def test_tracing_changes_no_invariant_outcome(self, seed):
        untraced = run_scenario(seed)
        traced = run_scenario(seed, ScenarioConfig(tracing=True))
        assert untraced.ok, (
            f"untraced seed {seed} violated invariants:\n" + "\n".join(untraced.violations)
        )
        assert traced.ok, (
            f"seed {seed} violates invariants only when traced:\n"
            + "\n".join(traced.violations)
        )
        assert traced.ops_submitted == untraced.ops_submitted
        assert traced.scheduler["in_flight"] == 0

    def test_traced_scenario_is_deterministic(self):
        first = run_scenario(3, ScenarioConfig(tracing=True))
        second = run_scenario(3, ScenarioConfig(tracing=True))
        assert first.summary() == second.summary()
        assert first.faults == second.faults


class TestFailureTraceDump:
    def test_violation_dumps_failing_window_chrome_trace(self, tmp_path):
        runner = ScenarioRunner(0, trace_dir=str(tmp_path))
        report = runner.run(
            checkers=[lambda _runner: ["synthetic violation for the dump path"]]
        )
        assert not report.ok
        path = tmp_path / "chaos-seed-0-trace.json"
        assert path.exists()
        assert any(str(path) in violation for violation in report.violations)
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert events  # the failing window actually contains spans
        window_start = (runner._first_fault_at or 0.0) * 1e6
        # The window's own spans are present; earlier events are only the
        # ancestor lineages pulled in for context.
        assert any(event["ts"] >= window_start for event in events)

    def test_no_dump_without_violations(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CHAOS_TRACE_DIR", str(tmp_path))
        report = run_scenario(1)
        assert report.ok
        assert list(tmp_path.iterdir()) == []

    def test_env_var_implies_tracing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CHAOS_TRACE_DIR", str(tmp_path))
        runner = ScenarioRunner(2)
        runner.run()
        assert runner.cluster.tracer is not None
