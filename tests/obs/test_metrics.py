"""Unit tests for the metrics registry: instruments, tags, collectors."""

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SupportsToDict,
    format_series,
)


class TestFormat:
    def test_bare_name(self):
        assert format_series("rpc.bytes", {}) == "rpc.bytes"

    def test_tags_sorted_into_braces(self):
        name = format_series("rpc.bytes", {"node": "a", "kind": "query.data"})
        assert name == "rpc.bytes{kind=query.data,node=a}"


class TestCounter:
    def test_accumulates_per_tag_set(self):
        counter = Counter("cache.hits")
        counter.inc(tier="node")
        counter.inc(3, tier="node")
        counter.inc(tier="result")
        assert counter.value(tier="node") == 4
        assert counter.value(tier="result") == 1
        assert counter.total() == 5

    def test_series_are_sorted_and_formatted(self):
        counter = Counter("rpc.messages")
        counter.inc(kind="b")
        counter.inc(kind="a")
        names = [format_series(name, tags) for name, tags, _ in counter.series()]
        assert names == ["rpc.messages{kind=a}", "rpc.messages{kind=b}"]


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("scheduler.in_flight")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value() == 1


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        histogram = Histogram("op.latency")
        for value in (0.001, 0.01, 0.1):
            histogram.observe(value, kind="query")
        assert histogram.count(kind="query") == 3
        ((_, _, summary),) = histogram.series()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.111)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.1)

    def test_buckets_are_cumulative_and_end_at_inf(self):
        histogram = Histogram("op.latency", buckets=(0.01, 0.1))
        for value in (0.005, 0.05, 0.5):
            histogram.observe(value)
        ((_, _, summary),) = histogram.series()
        assert summary["buckets"][0.01] == 1
        assert summary["buckets"][0.1] == 2
        assert summary["buckets"][float("inf")] == 3

    def test_default_buckets_cover_virtual_time_latencies(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 1.0


class TestRegistry:
    def test_instruments_are_memoised_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("rpc.bytes") is registry.counter("rpc.bytes")

    def test_name_reuse_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("rpc.bytes")
        with pytest.raises(TypeError):
            registry.gauge("rpc.bytes")

    def test_collectors_feed_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("rpc.bytes").inc(10)
        registry.register_collector(lambda: [("scheduler.queued", {}, 2)])
        snapshot = registry.snapshot()
        assert snapshot["rpc.bytes"] == 10
        assert snapshot["scheduler.queued"] == 2

    def test_to_dict_protocol(self):
        registry = MetricsRegistry()
        assert isinstance(registry, SupportsToDict)
        assert registry.to_dict() == {"metrics": {}}
