"""Per-query execution profiles: coverage, reconciliation, fault continuity."""

import pytest

from repro.cluster import Cluster
from repro.query.service import RECOVERY_RESTART, QueryOptions
from repro.workloads import tpch

TPCH_SCALE = 0.25
NODES = 8


@pytest.fixture(scope="module")
def tpch_instance():
    return tpch.generate(TPCH_SCALE, seed=0)


def traced_cluster(tpch_instance, num_nodes=NODES):
    cluster = Cluster(num_nodes)
    cluster.publish_relations(tpch_instance.relation_list())
    cluster.enable_tracing()
    return cluster


@pytest.fixture(scope="module")
def traced_q3(tpch_instance):
    cluster = traced_cluster(tpch_instance)
    before = cluster.network.traffic.snapshot()
    result = cluster.query(
        tpch.query("Q3"), options=QueryOptions(use_result_cache=False)
    )
    metered = before.delta(cluster.network.traffic.snapshot())
    return cluster, result, metered


class TestProfile:
    def test_query_is_bound_to_one_trace(self, traced_q3):
        cluster, result, _ = traced_q3
        statistics = result.statistics
        assert statistics.trace_id is not None
        assert cluster.tracer.query_ids_of(statistics.trace_id)

    def test_span_tree_covers_metered_wire_bytes(self, traced_q3):
        cluster, result, metered = traced_q3
        spans = cluster.tracer.spans_of(result.statistics.trace_id)
        span_bytes = sum(span.bytes for span in spans)
        # Acceptance bar is >= 95%; in fault-free runs it is exact.
        assert span_bytes >= 0.95 * metered.total_bytes
        assert span_bytes <= metered.total_bytes

    def test_profile_reconciles_with_traffic_meter_per_kind(self, traced_q3):
        _, result, _ = traced_q3
        statistics = result.statistics
        profile = statistics.profile()
        assert statistics.bytes_by_kind  # the window saw real traffic
        for kind, wire_bytes in statistics.bytes_by_kind.items():
            assert profile.bytes_by_kind.get(kind) == wire_bytes
            assert profile.messages_by_kind.get(kind, 0) > 0

    def test_operator_rows_come_from_fragment_teardown(self, traced_q3):
        _, result, _ = traced_q3
        profile = result.statistics.profile()
        by_label = {row.label: row for row in profile.operators}
        scans = [row for row in profile.operators if "DistributedScan" in row.label]
        assert scans and all(row.rows and row.rows > 0 for row in scans)
        rehash = next(row for row in profile.operators if "Rehash" in row.label)
        assert rehash.rows > 0 and rehash.batches > 0 and rehash.bytes > 0
        assert len(by_label) == len(profile.operators)  # plan labels are unique

    def test_format_profile_renders_the_operator_tree(self, traced_q3):
        _, result, _ = traced_q3
        profile = result.statistics.profile()
        text = profile.format()
        lines = text.splitlines()
        assert "wire bytes" in lines[0]
        assert any(line.startswith("Ship") for line in lines)
        # Children are indented under the root.
        assert any(line.startswith("  ") for line in lines[1:])

    def test_profile_none_without_tracing(self, tpch_instance):
        cluster = Cluster(4)
        cluster.publish_relations(tpch_instance.relation_list())
        result = cluster.query(
            tpch.query("Q6"), options=QueryOptions(use_result_cache=False)
        )
        assert result.statistics.trace_id is None
        assert result.statistics.profile() is None


class TestFaultContinuity:
    def test_restarted_query_keeps_its_trace(self, tpch_instance):
        cluster = traced_cluster(tpch_instance)
        cluster.network.failure_detection_delay = 0.002
        cluster.fail_node(cluster.addresses[3], at_time=cluster.now + 0.001)
        result = cluster.query(
            tpch.query("Q3"),
            options=QueryOptions(
                use_result_cache=False, recovery_mode=RECOVERY_RESTART
            ),
        )
        statistics = result.statistics
        if statistics.restarts == 0:
            pytest.skip("query finished before the failure was detected")
        profile = statistics.profile()
        # All attempts executed inside the submission's single trace.
        assert len(profile.query_ids) == statistics.restarts + 1
        assert profile.bytes_by_kind.get("query.restart") == 0
        # The restart phase and the per-attempt control traffic are overhead,
        # not operator work.
        assert profile.overhead_bytes > 0
        spans = cluster.tracer.spans_of(statistics.trace_id)
        assert sum(1 for span in spans if span.name == "query.restart") == (
            statistics.restarts
        )
        # No span of the trace parents onto a different trace.
        ids = {span.span_id for span in spans}
        assert all(
            span.parent_id is None or span.parent_id in ids for span in spans
        )
