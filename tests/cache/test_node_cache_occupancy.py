"""Occupancy properties of the node cache under encoded batch accounting.

Scan entries are stored as :class:`EncodedScanBatch` and charged at the
*actual* encoded payload size — not the decoded tuple footprint — so the
byte budget reflects what an entry really occupies and effective capacity
grows with the encoding win.  The properties pinned here:

* at every point of a random operation sequence, ``bytes_used`` equals the
  sum of the live entries' charged sizes and never exceeds the budget;
* a scan entry's charged size is exactly ``EncodedScanBatch.stored_size()``
  (64-byte framing + 24 bytes per tuple id + the compressed encoded batch);
* the per-relation residency aggregate stays consistent with the same sums
  across eviction and invalidation.
"""

import random

import pytest

from repro.cache.node import KIND_SCAN, NodeCache
from repro.cache.policies import make_policy
from repro.common.hashing import KEY_SPACE_SIZE, KeyRange
from repro.common.serialization import EncodedScanBatch
from repro.common.types import TupleId, VersionedTuple
from repro.storage.pages import CoordinatorRecord, IndexPage, PageId, PageRef


def make_tuples(relation, page, count, rng):
    statuses = ("NEW", "OPEN", "DONE")
    return [
        VersionedTuple(
            relation,
            TupleId((f"{relation}-{page}-{i}",), 1),
            (i, statuses[rng.randrange(3)], round(rng.uniform(1, 500), 2)),
        )
        for i in range(count)
    ]


def make_page(relation, epoch, sequence, ids=0):
    span = KEY_SPACE_SIZE // 64
    ref = PageRef(
        PageId(relation, epoch, sequence),
        KeyRange(sequence * span, (sequence + 1) * span),
    )
    return IndexPage(
        ref,
        [TupleId((f"{relation}-{sequence}-{i}",), epoch) for i in range(ids)],
    )


def live_sizes(cache: NodeCache) -> int:
    return sum(entry.size for entry in cache.store.entries())


class TestOccupancyInvariant:
    @pytest.mark.parametrize("policy_name", ["lru", "greedy-dual"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bytes_used_tracks_charged_sizes(self, policy_name, seed):
        rng = random.Random(seed)
        budget = 6000
        cache = NodeCache(budget, policy=make_policy(policy_name))
        relations = ("orders", "lineitem")
        for _step in range(600):
            action = rng.random()
            relation = rng.choice(relations)
            sequence = rng.randrange(8)
            if action < 0.35:
                page_id = PageId(relation, 1, sequence)
                cache.put_scan(
                    page_id, make_tuples(relation, sequence, rng.randrange(1, 30), rng)
                )
            elif action < 0.55:
                cache.put_page(make_page(relation, 1, sequence, rng.randrange(0, 40)))
            elif action < 0.70:
                record = CoordinatorRecord(
                    relation, 1, [make_page(relation, 1, s).ref for s in range(4)]
                )
                cache.put_coordinator(record)
            elif action < 0.80:
                cache.put_resolution(relation, rng.randrange(5), 1)
            elif action < 0.90:
                cache.get_scan(PageId(relation, 1, sequence))
            elif action < 0.97:
                cache.note_publish(relation, rng.randrange(1, 3))
            else:
                cache.note_epoch(rng.randrange(1, 3))
            assert cache.bytes_used == live_sizes(cache)
            assert cache.bytes_used <= budget
            # Per-relation residency equals the scan-entry sums.
            for name in relations:
                expected = sum(
                    entry.size
                    for entry in cache.store.entries()
                    if entry.key[0] == KIND_SCAN and entry.key[1].relation == name
                )
                assert cache.cached_bytes_for_relation(name) == expected

    def test_scan_entries_charged_at_encoded_size(self):
        rng = random.Random(7)
        cache = NodeCache(1 << 20)
        page_id = PageId("orders", 1, 0)
        tuples = make_tuples("orders", 0, 50, rng)
        cache.put_scan(page_id, tuples)
        (entry,) = [e for e in cache.store.entries() if e.key[0] == KIND_SCAN]
        reference = EncodedScanBatch.from_tuples(tuple(tuples))
        assert entry.size == reference.stored_size()
        # The charge is the compressed encoded payload, which undercuts the
        # raw decoded footprint for these repetitive columns.
        assert reference.batch.compressed_size <= reference.batch.raw_size
        # And the cached value round-trips to the original tuples.
        assert cache.get_scan(page_id).decode_tuples() == tuples

    def test_oversized_scan_batch_never_evicts(self):
        rng = random.Random(9)
        cache = NodeCache(500)
        cache.put_resolution("orders", 1, 1)
        held = cache.bytes_used
        cache.put_scan(PageId("orders", 1, 0), make_tuples("orders", 0, 500, rng))
        # The oversized batch is rejected outright; prior entries survive.
        assert cache.bytes_used == held
        assert cache.get_resolution("orders", 1) == 1
