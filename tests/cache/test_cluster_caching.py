"""Cluster-level cache correctness across epochs.

The contract under test (the acceptance criteria of the cache subsystem):

* a warm repeat of a retrieval ships strictly fewer bytes than the cold run;
* publishing a new relation version invalidates exactly the affected
  result-cache entries — queries at the new epoch bypass the cache and see
  the new data, queries pinned to the old epoch keep hitting;
* index pages *shared* between versions keep hitting the page/tuple cache
  after a publish; only the changed pages go back over the network.
"""

import pytest

from repro.cache import CacheConfig
from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.storage.client import UpdateBatch


def _relation(rows: int = 400) -> RelationData:
    data = RelationData(Schema("events", ["e_id", "e_kind", "e_weight"], key=["e_id"]))
    for i in range(rows):
        data.add(f"ev-{i:04d}", ["click", "view", "buy"][i % 3], i % 17)
    return data


@pytest.fixture
def cluster():
    cluster = Cluster(4, cache_config=CacheConfig())
    cluster.publish_relations([_relation()])
    return cluster


class TestWarmRetrieval:
    def test_warm_repeat_ships_strictly_fewer_bytes(self, cluster):
        before = cluster.traffic_snapshot()
        cold = cluster.retrieve("events")
        cold_bytes = before.delta(cluster.traffic_snapshot()).total_bytes
        assert cold.pages_from_cache == 0
        assert cold_bytes > 0

        before = cluster.traffic_snapshot()
        warm = cluster.retrieve("events")
        warm_bytes = before.delta(cluster.traffic_snapshot()).total_bytes
        assert sorted(warm.rows()) == sorted(cold.rows())
        assert warm.pages_from_cache == warm.pages_scanned
        assert warm_bytes < cold_bytes

    def test_sparse_relation_with_empty_pages_goes_fully_warm(self):
        """Pages whose hash range holds no tuples are cached as empty batches
        (distinguished from unavailable pages), so even sparse relations need
        zero network traffic on the warm repeat."""
        cluster = Cluster(4, cache_config=CacheConfig())
        cluster.publish_relations([_relation(6)])  # 6 tuples over >= 4 pages
        cold = cluster.retrieve("events")
        assert cold.pages_scanned >= 4
        before = cluster.traffic_snapshot()
        warm = cluster.retrieve("events")
        warm_bytes = before.delta(cluster.traffic_snapshot()).total_bytes
        assert warm.pages_from_cache == warm.pages_scanned
        assert warm_bytes == 0
        assert sorted(warm.rows()) == sorted(cold.rows())

    def test_predicated_retrievals_stay_correct_and_uncached(self, cluster):
        predicate = lambda key: key[0] <= "ev-0099"  # noqa: E731
        first = cluster.retrieve("events", key_predicate=predicate)
        second = cluster.retrieve("events", key_predicate=predicate)
        assert len(first.tuples) == 100
        assert sorted(first.rows()) == sorted(second.rows())
        # Predicates are opaque callables: their scans must never be cached.
        assert second.pages_from_cache == 0


class TestEpochInvalidation:
    def test_shared_pages_hit_while_changed_pages_miss(self, cluster):
        relation = _relation()
        first = cluster.retrieve("events")
        warm = cluster.retrieve("events")
        assert warm.pages_from_cache == warm.pages_scanned

        # Modify a single tuple: exactly one index page gets a new version,
        # every other page of the new epoch is shared with the old one.
        change = UpdateBatch(
            relation.schema, modifications=[("ev-0000", "click", 999)]
        )
        cluster.publish(change)

        after = cluster.retrieve("events")
        assert after.pages_scanned == first.pages_scanned
        assert after.pages_from_cache == after.pages_scanned - 1
        changed = dict((r[0], r[2]) for r in after.rows())
        assert changed["ev-0000"] == 999

        # The old epoch's batches are all still resident: retrieval pinned to
        # the old version is served entirely from the cache.
        old = cluster.retrieve("events", epoch=1)
        assert old.pages_from_cache == old.pages_scanned
        assert dict((r[0], r[2]) for r in old.rows())["ev-0000"] == 0

    def test_result_cache_bypasses_stale_entries_after_publish(self, cluster):
        sql = "SELECT e_kind, COUNT(*) AS n FROM events GROUP BY e_kind"
        cold = cluster.query(sql)
        assert not cold.statistics.result_cache_hit
        warm = cluster.query(sql)
        assert warm.statistics.result_cache_hit
        assert sorted(warm.rows) == sorted(cold.rows)
        assert warm.statistics.bytes_total == 0

        # Publish a new version: the next latest-epoch query must bypass the
        # cached entry and reflect the change.
        change = UpdateBatch(
            _relation().schema,
            inserts=[("ev-9999", "click", 1)],
        )
        cluster.publish(change)
        fresh = cluster.query(sql)
        assert not fresh.statistics.result_cache_hit
        counts = dict(fresh.rows)
        assert counts["click"] == dict(cold.rows)["click"] + 1

        # ... while a query pinned to the old epoch still hits the old entry.
        pinned = cluster.query(sql, epoch=1)
        assert pinned.statistics.result_cache_hit
        assert sorted(pinned.rows) == sorted(cold.rows)

        # And the refreshed result is itself cached at the new epoch.
        refreshed = cluster.query(sql)
        assert refreshed.statistics.result_cache_hit
        assert sorted(refreshed.rows) == sorted(fresh.rows)

    def test_unrelated_publish_keeps_latest_queries_warm(self, cluster):
        sql = "SELECT COUNT(*) AS n FROM events"
        cold = cluster.query(sql)
        assert cluster.query(sql).statistics.result_cache_hit

        # Publishing a *different* relation mints a new cluster epoch, but
        # the cached entry's scanned versions are untouched: the next
        # latest-epoch query must still be served from the cache.
        other = RelationData(Schema("audit", ["a_id", "a_note"], key=["a_id"]))
        for i in range(50):
            other.add(f"a{i}", f"note-{i}")
        cluster.publish(other)
        warm = cluster.query(sql)
        assert warm.statistics.result_cache_hit
        assert warm.rows == cold.rows

    def test_republish_at_same_epoch_drops_version_keyed_entries(self, cluster):
        """Republishing a relation at an already-used epoch rewrites that
        version in place (the storage layer replaces it with the new batch);
        every cache tier must stop serving the old state and mirror whatever
        the cache-less system answers."""
        relation = _relation()
        warm = cluster.retrieve("events")               # warm the scan cache
        assert len(warm.tuples) == 400
        cluster.query("SELECT COUNT(*) AS n FROM events")  # warm result cache
        cluster.publish(
            UpdateBatch(relation.schema, inserts=[("ev-7777", "view", 1)]),
            epoch=1,                                    # same epoch, in place
        )
        # A cache-less cluster answers with exactly the republished batch;
        # the warm caches must not keep serving the 400 old tuples.
        fresh = cluster.retrieve("events", epoch=1)
        assert fresh.pages_from_cache == 0
        assert [t.values for t in fresh.tuples] == [("ev-7777", "view", 1)]
        requery = cluster.query("SELECT COUNT(*) AS n FROM events", epoch=1)
        assert requery.rows == [(1,)]

    def test_publish_invalidates_only_covering_result_entries(self, cluster):
        sql = "SELECT MAX(e_weight) AS top FROM events"
        cluster.query(sql)
        result_stats = cluster.cache_statistics()["result"]
        assert result_stats.invalidations == 0
        cluster.publish(UpdateBatch(
            _relation().schema, inserts=[("ev-8888", "view", 99)]
        ))
        new = cluster.query(sql)
        assert not new.statistics.result_cache_hit
        assert new.rows[0][0] == 99


class TestResultCacheControls:
    def test_use_result_cache_false_forces_execution(self, cluster):
        from repro.query.service import QueryOptions

        sql = "SELECT COUNT(*) AS n FROM events"
        cluster.query(sql)
        bypassed = cluster.query(sql, options=QueryOptions(use_result_cache=False))
        assert not bypassed.statistics.result_cache_hit
        assert bypassed.statistics.bytes_total > 0

    def test_statistics_report_cluster_wide_counters(self, cluster):
        cluster.retrieve("events")
        cluster.retrieve("events")
        stats = cluster.cache_statistics()
        assert stats["node"].hits > 0
        assert stats["node"].bytes_saved > 0

    def test_caching_disabled_by_default(self):
        plain = Cluster(4)
        plain.publish_relations([_relation(100)])
        assert not plain.cache_enabled
        result = plain.retrieve("events")
        assert result.pages_from_cache == 0
        stats = plain.cache_statistics()
        assert stats["node"].lookups == 0 and stats["result"].lookups == 0
        repeat = plain.query("SELECT COUNT(*) AS n FROM events")
        assert not repeat.statistics.result_cache_hit
