"""Unit tests for the plan fingerprint and the semantic result cache."""

from repro.cache import SemanticResultCache, plan_fingerprint
from repro.common.types import Schema
from repro.query.expressions import col, lit
from repro.query.physical import COLLECT_APPEND, PlanBuilder, PhysicalPlan


def _scan_plan(predicate=None, limit=None, columns=None):
    builder = PlanBuilder()
    schema = Schema("R", ["x", "v"], key=["x"])
    scan = builder.scan(schema, columns=columns, sargable=predicate)
    return PhysicalPlan(builder.ship(scan, collector_mode=COLLECT_APPEND, limit=limit))


class TestPlanFingerprint:
    def test_identical_plans_share_a_fingerprint(self):
        a = _scan_plan(predicate=col("x").eq(lit(3)))
        b = _scan_plan(predicate=col("x").eq(lit(3)))
        # Operator ids differ between independent builders; semantics do not.
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_differing_predicates_differ(self):
        a = _scan_plan(predicate=col("x").eq(lit(3)))
        b = _scan_plan(predicate=col("x").eq(lit(4)))
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_differing_limits_and_columns_differ(self):
        assert plan_fingerprint(_scan_plan(limit=1)) != plan_fingerprint(_scan_plan(limit=2))
        assert plan_fingerprint(_scan_plan(columns=["x"])) != plan_fingerprint(_scan_plan())

    def test_fingerprint_is_hashable(self):
        hash(plan_fingerprint(_scan_plan()))


class TestSemanticResultCache:
    def _store(self, cache, fingerprint="fp", epoch=5, scans=None, rows=((1, 2),)):
        assert cache.store_result(
            fingerprint, epoch, ("x", "v"), rows,
            scans if scans is not None else [("R", 3, None)], cold_bytes=10_000,
        )

    def test_roundtrip(self):
        cache = SemanticResultCache(1_000_000)
        self._store(cache)
        entry = cache.lookup("fp", 5)
        assert entry is not None
        assert entry.rows == ((1, 2),)
        assert entry.scans == (("R", 3, None),)

    def test_publish_of_scanned_relation_invalidates_covering_entries(self):
        cache = SemanticResultCache(1_000_000)
        self._store(cache, epoch=5, scans=[("R", 3, None)])
        # New version of R at epoch 4: a re-run at epoch 5 would resolve the
        # scan to 4 instead of 3, so the entry must go.
        assert cache.note_publish("R", 4) == 1
        assert cache.lookup("fp", 5) is None

    def test_publish_of_other_relation_keeps_entries(self):
        cache = SemanticResultCache(1_000_000)
        self._store(cache, epoch=5, scans=[("R", 3, None)])
        assert cache.note_publish("S", 4) == 0
        assert cache.lookup("fp", 5) is not None

    def test_publish_beyond_requested_epoch_keeps_entries(self):
        cache = SemanticResultCache(1_000_000)
        self._store(cache, epoch=5, scans=[("R", 3, None)])
        # Epoch 6 is newer than the query asked for: versions ≤ 5 are
        # immutable, the entry stays valid forever.
        assert cache.note_publish("R", 6) == 0
        assert cache.lookup("fp", 5) is not None

    def test_publish_below_resolution_keeps_entries(self):
        cache = SemanticResultCache(1_000_000)
        self._store(cache, epoch=5, scans=[("R", 3, None)])
        # A publish at an epoch strictly below what the entry read cannot
        # change what a re-run resolves to.
        assert cache.note_publish("R", 2) == 0
        assert cache.lookup("fp", 5) is not None

    def test_republish_at_resolved_epoch_invalidates(self):
        cache = SemanticResultCache(1_000_000)
        self._store(cache, epoch=5, scans=[("R", 3, None)])
        # The driver API allows republishing at an already-used epoch, which
        # rewrites version 3 in place: the entry that read it is stale.
        assert cache.note_publish("R", 3) == 1
        assert cache.lookup("fp", 5) is None

    def test_gossip_guard_is_conservative_but_preserves_old_epochs(self):
        cache = SemanticResultCache(1_000_000)
        self._store(cache, fingerprint="old", epoch=2, scans=[("R", 1, None)])
        self._store(cache, fingerprint="new", epoch=5, scans=[("R", 3, None)])
        assert cache.note_epoch(4) == 1  # only the covering entry is dropped
        assert cache.lookup("old", 2) is not None
        assert cache.lookup("new", 5) is None

    def test_pinned_scan_above_requested_epoch_is_invalidated(self):
        cache = SemanticResultCache(1_000_000)
        # The plan pins the scan to epoch 100 ("far future"): the scan bound
        # is the pin, not the requested epoch 5.
        self._store(cache, epoch=5, scans=[("R", 5, 100)])
        assert cache.lookup("fp", 5) is not None
        assert cache.note_publish("R", 6) == 1  # 6 <= pin: re-run would see it
        assert cache.lookup("fp", 5) is None

    def test_same_relation_scanned_at_two_epochs_tracked_separately(self):
        cache = SemanticResultCache(1_000_000)
        # Hand-built plan reading R twice: once pinned to epoch 2 (bound 2,
        # resolved 2) and once following the query epoch 9 (bound 9,
        # resolved 8).
        self._store(cache, epoch=9, scans=[("R", 2, 2), ("R", 8, None)])
        # Publishes at 5 and 3 fall above the pinned scan's bound and at or
        # below the unpinned scan's resolution — neither scan would change.
        assert cache.note_publish("R", 5) == 0
        assert cache.note_publish("R", 3) == 0
        assert cache.lookup("fp", 9) is not None
        # A publish at 9 supersedes the unpinned scan's resolution (8 < 9 ≤ 9).
        assert cache.note_publish("R", 9) == 1
        assert cache.lookup("fp", 9) is None

    def test_hit_counts_cold_bytes_as_saved(self):
        cache = SemanticResultCache(1_000_000)
        self._store(cache)
        cache.lookup("fp", 5)
        assert cache.stats.bytes_saved >= 10_000


class TestCrossEpochReuse:
    """An entry cached at an older epoch answers newer epochs until a known
    publish actually falls between its resolutions and the request."""

    def test_unrelated_publish_does_not_cut_reuse(self):
        cache = SemanticResultCache(1_000_000)
        cache.store_result("fp", 2, ("n",), ((1,),), [("R", 1, None)], cold_bytes=500)
        cache.note_publish("S", 3)  # other relation, new cluster epoch
        entry = cache.lookup("fp", 3)
        assert entry is not None and entry.rows == ((1,),)

    def test_covering_publish_cuts_reuse_but_not_old_epochs(self):
        cache = SemanticResultCache(1_000_000)
        cache.store_result("fp", 2, ("n",), ((1,),), [("R", 1, None)], cold_bytes=500)
        cache.note_publish("R", 3)
        assert cache.lookup("fp", 3) is None  # R@3 covers the request
        assert cache.lookup("fp", 2) is not None  # pinned old epoch intact

    def test_intermediate_publish_is_seen_even_after_later_ones(self):
        cache = SemanticResultCache(1_000_000)
        cache.store_result("fp", 2, ("n",), ((1,),), [("R", 1, None)], cold_bytes=500)
        cache.note_publish("R", 4)
        cache.note_publish("R", 9)
        # Request at 5: the publish at 4 lies in (1, 5] even though the
        # newest publish (9) is beyond the request.
        assert cache.lookup("fp", 5) is None

    def test_unattributed_gossip_epoch_blocks_reuse_conservatively(self):
        cache = SemanticResultCache(1_000_000)
        cache.store_result("fp", 2, ("n",), ((1,),), [("R", 1, None)], cold_bytes=500)
        cache.note_epoch(3)  # relation unknown: could be R
        assert cache.lookup("fp", 4) is None
        assert cache.lookup("fp", 2) is not None
        # Once attributed to another relation, reuse resumes.
        cache.note_publish("S", 3)
        assert cache.lookup("fp", 4) is not None

    def test_newest_valid_entry_wins(self):
        cache = SemanticResultCache(1_000_000)
        cache.store_result("fp", 1, ("n",), ((1,),), [("R", 1, None)], cold_bytes=500)
        cache.store_result("fp", 4, ("n",), ((2,),), [("R", 4, None)], cold_bytes=500)
        entry = cache.lookup("fp", 6)
        assert entry is not None and entry.rows == ((2,),)
