"""Property-style tests for the cache store and its eviction policies.

The two invariants the subsystem leans on:

* the byte budget is *never* exceeded, at any point, under any operation
  sequence (inserts, re-inserts, accesses, invalidations, oversized items);
* GreedyDual evicts lower-benefit entries before higher-benefit ones under
  pressure, while LRU evicts by recency regardless of benefit.
"""

import random

import pytest

from repro.cache import CacheStore, GreedyDualPolicy, LruPolicy, make_policy


class TestBudgetInvariant:
    @pytest.mark.parametrize("policy_name", ["lru", "greedy-dual"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_budget_never_exceeded_under_random_operations(self, policy_name, seed):
        rng = random.Random(seed)
        budget = 1000
        store = CacheStore(budget, policy=make_policy(policy_name))
        keys = [("item", i) for i in range(50)]
        for _step in range(2000):
            action = rng.random()
            key = rng.choice(keys)
            if action < 0.55:
                size = rng.randint(1, 400)
                benefit = rng.randint(1, 5000)
                store.put(key, f"value-{key}", size, benefit=benefit)
            elif action < 0.85:
                store.get(key)
            elif action < 0.95:
                store.invalidate(key)
            else:
                # Oversized items must be rejected without evicting anything.
                held = len(store)
                assert not store.put(key, "huge", budget + 1)
                assert len(store) == held
            assert store.bytes_used <= budget
            assert store.bytes_used == sum(e.size for e in store.entries())

    def test_zero_budget_accepts_nothing(self):
        store = CacheStore(0)
        assert not store.put(("k",), "v", 1)
        assert store.bytes_used == 0
        assert store.stats.rejected == 1

    def test_replacement_releases_old_footprint(self):
        store = CacheStore(100)
        store.put(("k",), "a", 80)
        store.put(("k",), "b", 60)
        assert store.bytes_used == 60
        assert len(store) == 1
        assert store.get(("k",)) == "b"


class TestGreedyDual:
    def test_low_benefit_evicted_before_high_benefit(self):
        store = CacheStore(300, policy=GreedyDualPolicy())
        store.put(("low",), "low", 100, benefit=10)
        store.put(("high",), "high", 100, benefit=10_000)
        store.put(("mid",), "mid", 100, benefit=100)
        # Budget is full; each new entry forces exactly one eviction, and the
        # victims must come out in benefit order: low, then mid.
        store.put(("new1",), "n1", 100, benefit=10_000)
        assert ("low",) not in store
        assert ("high",) in store and ("mid",) in store
        store.put(("new2",), "n2", 100, benefit=10_000)
        assert ("mid",) not in store
        assert ("high",) in store

    def test_benefit_is_weighed_per_byte(self):
        store = CacheStore(300, policy=GreedyDualPolicy())
        # Same total benefit, but the big entry saves fewer bytes per byte of
        # budget it occupies — it must lose under pressure.
        store.put(("big",), "big", 200, benefit=1000)
        store.put(("small",), "small", 100, benefit=1000)
        store.put(("incoming",), "x", 150, benefit=1000)
        assert ("big",) not in store
        assert ("small",) in store

    def test_inflation_ages_out_untouched_entries(self):
        store = CacheStore(200, policy=GreedyDualPolicy())
        store.put(("old-high",), "v", 100, benefit=500)
        # Churn through many low-benefit entries; each eviction raises L, so
        # the untouched high-benefit entry eventually becomes the victim.
        for i in range(50):
            store.put(("churn", i), "v", 100, benefit=50)
        assert ("old-high",) not in store

    def test_access_refreshes_score(self):
        store = CacheStore(200, policy=GreedyDualPolicy())
        store.put(("kept",), "v", 100, benefit=60)
        store.put(("other",), "v", 100, benefit=50)
        for i in range(20):
            assert store.get(("kept",)) == "v"  # refresh with current L
            store.put(("churn", i), "v", 100, benefit=55)
        assert ("kept",) in store

    def test_heap_stays_bounded_under_hit_heavy_steady_state(self):
        policy = GreedyDualPolicy()
        store = CacheStore(10_000, policy=policy)
        for i in range(10):
            store.put(("k", i), i, 100, benefit=100)
        for _round in range(5000):  # all hits, no evictions
            store.get(("k", _round % 10))
        assert len(policy._heap) <= max(64, 4 * 10) + 10


class TestLru:
    def test_evicts_least_recently_used(self):
        store = CacheStore(300, policy=LruPolicy())
        store.put(("a",), 1, 100)
        store.put(("b",), 2, 100)
        store.put(("c",), 3, 100)
        assert store.get(("a",)) == 1  # refresh a; b is now the oldest
        store.put(("d",), 4, 100)
        assert ("b",) not in store
        assert all(k in store for k in [("a",), ("c",), ("d",)])


class TestStats:
    def test_hits_misses_and_bytes_saved(self):
        store = CacheStore(1000)
        store.put(("k",), "v", 100, benefit=450)
        assert store.get(("k",)) == "v"
        assert store.get(("absent",)) is None
        stats = store.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.bytes_saved == 450
        assert stats.hit_rate == 0.5
        assert stats.hits_by_kind == {"k": 1}

    def test_peek_does_not_touch_stats(self):
        store = CacheStore(1000)
        store.put(("k",), "v", 10)
        assert store.peek(("k",)) == "v"
        assert store.peek(("absent",)) is None
        assert store.stats.lookups == 0

    def test_invalidate_where_targets_one_kind(self):
        store = CacheStore(1000)
        store.put(("resolve", "R", 3), 2, 10)
        store.put(("page", "p1"), "page", 10)
        dropped = store.invalidate_where(lambda key, _v: key[0] == "resolve")
        assert dropped == 1
        assert ("page", "p1") in store
        assert ("resolve", "R", 3) not in store
