"""Tests for the discrete-event network simulator."""

import pytest

from repro.common.errors import NodeFailedError, UnknownNodeError
from repro.net.simnet import HostSpec, Network, broadcast


def make_pair(latency=0.001, bandwidth=1_000_000.0):
    net = Network(latency=latency, default_host=HostSpec(
        egress_bandwidth=bandwidth, ingress_bandwidth=bandwidth))
    a = net.add_node("a")
    b = net.add_node("b")
    return net, a, b


class TestEventLoop:
    def test_schedule_and_run_orders_events(self):
        net = Network()
        order = []
        net.schedule(0.2, lambda: order.append("late"))
        net.schedule(0.1, lambda: order.append("early"))
        net.run()
        assert order == ["early", "late"]
        assert net.now == pytest.approx(0.2)

    def test_equal_time_events_preserve_insertion_order(self):
        net = Network()
        order = []
        for i in range(5):
            net.schedule(0.5, lambda i=i: order.append(i))
        net.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_bound(self):
        net = Network()
        fired = []
        net.schedule(1.0, lambda: fired.append(1))
        net.run(until=0.5)
        assert fired == []
        assert net.now == pytest.approx(0.5)
        net.run()
        assert fired == [1]

    def test_negative_delay_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        net = Network()
        seen = []
        net.schedule(0.1, lambda: net.schedule(0.1, lambda: seen.append(net.now)))
        net.run()
        assert seen[0] == pytest.approx(0.2)


class TestMessaging:
    def test_message_delivery_invokes_handler(self):
        net, a, b = make_pair()
        received = []
        b.register_handler("greet", lambda msg: received.append(msg.payload["text"]))
        a.send("b", "greet", {"text": "hi"}, size=10)
        net.run()
        assert received == ["hi"]

    def test_delivery_time_includes_latency_and_bandwidth(self):
        net, a, b = make_pair(latency=0.05, bandwidth=1000.0)
        times = []
        b.register_handler("data", lambda msg: times.append(net.now))
        a.send("b", "data", {}, size=1000 - net.MESSAGE_OVERHEAD_BYTES)
        net.run()
        # 1000 bytes on a 1000 B/s egress + ingress plus 50 ms latency.
        assert times[0] >= 2.0 + 0.05

    def test_local_messages_do_not_count_as_traffic(self):
        net, a, _b = make_pair()
        a.register_handler("loop", lambda msg: None)
        a.send("a", "loop", {}, size=500)
        net.run()
        assert net.traffic.total_bytes == 0

    def test_remote_traffic_is_recorded(self):
        net, a, b = make_pair()
        b.register_handler("data", lambda msg: None)
        a.send("b", "data", {}, size=100)
        net.run()
        assert net.traffic.total_bytes == 100 + net.MESSAGE_OVERHEAD_BYTES
        assert net.traffic.bytes_sent["a"] == net.traffic.total_bytes
        assert net.traffic.bytes_received["b"] == net.traffic.total_bytes

    def test_unknown_handler_raises(self):
        net, a, b = make_pair()
        a.send("b", "nope", {}, size=1)
        with pytest.raises(UnknownNodeError):
            net.run()

    def test_unknown_destination_raises(self):
        net, a, _b = make_pair()
        with pytest.raises(UnknownNodeError):
            a.send("missing", "x", {}, size=1)

    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(ValueError):
            net.add_node("a")

    def test_broadcast_reaches_all(self):
        net = Network()
        nodes = [net.add_node(f"n{i}") for i in range(4)]
        received = []
        for node in nodes:
            node.register_handler("b", lambda msg, node=node: received.append(node.address))
        broadcast(net, "n0", [n.address for n in nodes if n.address != "n0"], "b", {}, 10)
        net.run()
        assert sorted(received) == ["n1", "n2", "n3"]

    def test_cpu_charge_delays_later_handlers(self):
        net, a, b = make_pair(latency=0.0)
        handled_at = []

        def slow_handler(msg):
            handled_at.append(net.now)
            b.charge_cpu(1.0)

        b.register_handler("work", slow_handler)
        a.send("b", "work", {}, size=1)
        a.send("b", "work", {}, size=1)
        net.run()
        assert handled_at[1] - handled_at[0] >= 1.0

    def test_pairwise_latency_override(self):
        net, a, b = make_pair(latency=0.001)
        net.set_pairwise_latency("a", "b", 0.5)
        times = []
        b.register_handler("x", lambda msg: times.append(net.now))
        a.send("b", "x", {}, size=1)
        net.run()
        assert times[0] >= 0.5


class TestTraffic:
    def test_snapshot_delta(self):
        net, a, b = make_pair()
        b.register_handler("d", lambda msg: None)
        a.send("b", "d", {}, size=100)
        net.run()
        before = net.traffic.snapshot()
        a.send("b", "d", {}, size=200)
        net.run()
        delta = before.delta(net.traffic.snapshot())
        assert delta.total_bytes == 200 + net.MESSAGE_OVERHEAD_BYTES
        assert delta.total_messages == 1

    def test_per_node_bytes(self):
        net, a, b = make_pair()
        b.register_handler("d", lambda msg: None)
        a.send("b", "d", {}, size=100)
        net.run()
        snap = net.traffic.snapshot()
        per_node = snap.per_node_bytes()
        assert per_node["a"] == per_node["b"] == snap.total_bytes
        assert snap.max_per_node_bytes() == snap.total_bytes
        assert snap.mean_per_node_bytes() == pytest.approx(snap.total_bytes / 2)


class TestFailures:
    def test_failed_node_does_not_receive(self):
        net, a, b = make_pair()
        received = []
        b.register_handler("d", lambda msg: received.append(1))
        net.fail_node("b")
        a.send("b", "d", {}, size=1)
        net.run()
        assert received == []

    def test_failed_sender_cannot_send(self):
        net, a, _b = make_pair()
        net.fail_node("a")
        with pytest.raises(NodeFailedError):
            a.send("b", "d", {}, size=1)

    def test_in_flight_message_from_failed_sender_is_dropped(self):
        net, a, b = make_pair(latency=1.0)
        received = []
        b.register_handler("d", lambda msg: received.append(1))
        a.send("b", "d", {}, size=1)
        net.fail_node("a", detection_delay=0.0)
        net.run()
        assert received == []

    def test_failure_listeners_notified(self):
        net = Network(failure_detection_delay=0.1)
        a = net.add_node("a")
        net.add_node("b")
        c = net.add_node("c")
        notified = []
        a.add_failure_listener(lambda addr: notified.append(("a", addr)))
        c.add_failure_listener(lambda addr: notified.append(("c", addr)))
        net.fail_node("b")
        net.run()
        assert ("a", "b") in notified
        assert ("c", "b") in notified

    def test_failed_node_not_notified_of_others(self):
        net = Network()
        net.add_node("a")
        b = net.add_node("b")
        notified = []
        b.add_failure_listener(lambda addr: notified.append(addr))
        net.fail_node("b")
        net.fail_node("a")
        net.run()
        assert notified == []

    def test_fail_node_at_schedules_crash(self):
        net, a, b = make_pair()
        received = []
        b.register_handler("d", lambda msg: received.append(net.now))
        net.fail_node_at("b", at_time=0.5)
        net.schedule(0.1, lambda: a.send("b", "d", {}, size=1))
        net.schedule(1.0, lambda: None)
        net.run()
        assert len(received) == 1  # only the pre-failure message

    def test_restart_node(self):
        net, a, b = make_pair()
        received = []
        b.register_handler("d", lambda msg: received.append(1))
        net.fail_node("b")
        net.run()
        net.restart_node("b")
        a.send("b", "d", {}, size=1)
        net.run()
        assert received == [1]

    def test_live_nodes(self):
        net, _a, _b = make_pair()
        assert sorted(net.live_nodes()) == ["a", "b"]
        net.fail_node("a")
        assert net.live_nodes() == ["b"]
