"""Tests for the RPC / connection layer built on the simulator."""

import pytest

from repro.net.simnet import Network
from repro.net.transport import RpcEndpoint, rpc_endpoint


def make_cluster(n=3):
    net = Network()
    endpoints = {}
    for i in range(n):
        node = net.add_node(f"n{i}")
        endpoints[node.address] = RpcEndpoint(node)
    return net, endpoints


class TestRpcCall:
    def test_request_response(self):
        net, eps = make_cluster(2)

        def handler(src, payload, respond):
            respond({"echo": payload["value"], "from": src}, size=16)

        eps["n1"].register("echo", handler)
        replies = []
        eps["n0"].call("n1", "echo", {"value": 42}, size=8, on_reply=replies.append)
        net.run()
        assert replies == [{"echo": 42, "from": "n0"}]

    def test_multiple_outstanding_calls_matched_by_id(self):
        net, eps = make_cluster(2)
        eps["n1"].register("double", lambda src, p, r: r({"result": p["x"] * 2}, 8))
        results = []
        for x in range(5):
            eps["n0"].call("n1", "double", {"x": x}, 8, on_reply=lambda rep: results.append(rep["result"]))
        net.run()
        assert sorted(results) == [0, 2, 4, 6, 8]

    def test_missing_method_raises(self):
        net, eps = make_cluster(2)
        eps["n0"].call("n1", "nothing", {}, 8, on_reply=lambda rep: None)
        with pytest.raises(Exception):
            net.run()

    def test_cast_is_one_way(self):
        net, eps = make_cluster(2)
        seen = []
        eps["n1"].register("notify", lambda src, p, r: seen.append((src, p["k"])))
        eps["n0"].cast("n1", "notify", {"k": "v"}, 8)
        net.run()
        assert seen == [("n0", "v")]

    def test_rpc_endpoint_helper_is_idempotent(self):
        net = Network()
        node = net.add_node("x")
        first = rpc_endpoint(node)
        second = rpc_endpoint(node)
        assert first is second

    def test_rpc_traffic_recorded(self):
        net, eps = make_cluster(2)
        eps["n1"].register("m", lambda src, p, r: r({}, 100))
        eps["n0"].call("n1", "m", {}, 50, on_reply=lambda rep: None)
        net.run()
        assert net.traffic.total_messages == 2
        assert net.traffic.total_bytes > 150


class TestFailureHandling:
    def test_on_failure_called_when_destination_dies(self):
        net, eps = make_cluster(2)
        eps["n1"].register("slow", lambda src, p, r: None)  # never responds
        failures = []
        eps["n0"].call("n1", "slow", {}, 8, on_reply=lambda rep: None,
                       on_failure=failures.append)
        net.schedule(0.5, lambda: net.fail_node("n1"))
        net.run()
        assert failures == ["n1"]

    def test_reply_after_failover_is_ignored(self):
        net, eps = make_cluster(2)
        # Handler responds, but only after the caller has already failed the call over.
        eps["n1"].register("late", lambda src, p, r: net.schedule(2.0, lambda: None))
        failures, replies = [], []
        eps["n0"].call("n1", "late", {}, 8, on_reply=replies.append, on_failure=failures.append)
        net.schedule(0.01, lambda: net.fail_node("n1"))
        net.run()
        assert failures == ["n1"]
        assert replies == []

    def test_ping_timeout_detects_dead_node(self):
        net, eps = make_cluster(2)
        net.fail_node("n1")
        timed_out = []
        eps["n0"].ping("n1", on_timeout=timed_out.append, timeout=0.5)
        net.run()
        assert timed_out == ["n1"]

    def test_ping_of_live_node_does_not_time_out(self):
        net, eps = make_cluster(2)
        timed_out = []
        eps["n0"].ping("n1", on_timeout=timed_out.append, timeout=5.0)
        net.run()
        assert timed_out == []
