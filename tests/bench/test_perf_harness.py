"""The perf harness: structure of BENCH_perf.json and the regression check.

The timing itself is machine-dependent and never asserted; what is pinned is
the document layout (future PRs extend the trajectory against it), the
determinism of the seeded workloads, and the ``--check`` comparison logic
(machine-speed normalisation, variance floor, tolerance).
"""

import json

from repro.bench import perf


def test_smoke_suite_structure(tmp_path):
    document = perf.run_suite(seed=0, repeat=1, scale="smoke", include_e2e=False,
                              include_traffic=False)
    benches = document["benchmarks"]
    for name in (
        "calibration.spin",
        "serialization.encode_tpch",
        "serialization.encode_stb",
        "serialization.decode_tpch",
        "serialization.values_roundtrip",
        "hashing.partition_hash",
        "hashing.tuple_id_hash_key",
        "hashing.sha1_identifiers",
        "operators.select_project",
        "operators.hash_join",
        "operators.aggregate",
    ):
        assert name in benches, name
        entry = benches[name]
        assert entry["seconds"] > 0
        assert entry["ops"] > 0
        assert entry["us_per_op"] > 0
    assert document["meta"]["scale"] == "smoke"
    # The document is JSON-serialisable as produced.
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(document))
    assert json.loads(path.read_text())["benchmarks"]


def test_workloads_are_deterministic():
    assert perf._tpch_like_rows(50, 3) == perf._tpch_like_rows(50, 3)
    assert perf._stb_like_rows(50, 3) == perf._stb_like_rows(50, 3)
    assert perf._mixed_value_tuples(50, 3) == perf._mixed_value_tuples(50, 3)
    assert perf._tpch_like_rows(50, 3) != perf._tpch_like_rows(50, 4)


def _doc(spins, **benches):
    return {
        "benchmarks": {
            "calibration.spin": {"seconds": spins, "ops": 1, "us_per_op": 1.0},
            **{
                name: {"seconds": seconds, "ops": 1, "us_per_op": 1.0}
                for name, seconds in benches.items()
            },
        }
    }


def test_check_passes_within_tolerance():
    reference = _doc(1.0, x=1.0)
    fresh = _doc(1.0, x=1.2)
    assert perf.check_regressions(reference, fresh, tolerance=0.25) == []


def test_check_fails_beyond_tolerance():
    reference = _doc(1.0, x=1.0)
    fresh = _doc(1.0, x=1.3)
    failures = perf.check_regressions(reference, fresh, tolerance=0.25)
    assert failures and "x" in failures[0]


def test_check_normalises_by_machine_speed():
    # The fresh machine is 2x slower (calibration 2.0 vs 1.0); a benchmark
    # that is 1.8x slower in wall time is *faster* after normalisation.
    reference = _doc(1.0, x=1.0)
    fresh = _doc(2.0, x=1.8)
    assert perf.check_regressions(reference, fresh, tolerance=0.25) == []


def test_check_applies_variance_floor():
    # 10 ms vs 40 ms is a 4x regression but below the 50 ms floor: ignored.
    reference = _doc(1.0, x=0.010)
    fresh = _doc(1.0, x=0.040)
    assert perf.check_regressions(reference, fresh, tolerance=0.25) == []


def test_check_reports_missing_benchmarks():
    reference = _doc(1.0, x=1.0)
    fresh = _doc(1.0)
    failures = perf.check_regressions(reference, fresh)
    assert failures and "not in this run" in failures[0]


def test_cli_writes_output(tmp_path):
    output = tmp_path / "BENCH_perf.json"
    code = perf.main([
        "--scale", "smoke", "--repeat", "1", "--no-e2e", "--no-traffic",
        "--output", str(output),
    ])
    assert code == 0
    document = json.loads(output.read_text())
    assert "benchmarks" in document and "meta" in document


def test_cli_check_against_own_output_passes(tmp_path):
    output = tmp_path / "BENCH_perf.json"
    assert perf.main([
        "--scale", "smoke", "--repeat", "1", "--no-e2e",
        "--output", str(output),
    ]) == 0
    # A fresh run checked against its own numbers is within tolerance — the
    # traffic bytes in particular reproduce *exactly*.
    assert perf.main([
        "--scale", "smoke", "--repeat", "2", "--no-e2e",
        "--check", str(output),
    ]) == 0


# ---------------------------------------------------------------------------
# Wire-traffic section
# ---------------------------------------------------------------------------


def test_traffic_suite_structure_and_determinism(tmp_path):
    first = perf.run_traffic_suite(seed=0, nodes=5, scale_factor=0.5)
    second = perf.run_traffic_suite(seed=0, nodes=5, scale_factor=0.5)
    assert set(first["queries"]) == set(perf.TRAFFIC_QUERIES)
    for name, entry in first["queries"].items():
        assert entry["bytes_pushdown"] > 0
        assert entry["bytes_baseline"] >= entry["bytes_pushdown"], name
        assert entry["messages_pushdown"] > 0
        assert entry["pages_total"] > 0
    # Simulated byte counts are exact: two runs agree to the byte.
    assert first["queries"] == second["queries"]
    # The pruning query actually prunes; the figure queries cannot (their
    # predicates filter non-key attributes).
    assert first["queries"]["PRUNE"]["pages_pruned"] > 0
    path = tmp_path / "traffic.json"
    path.write_text(json.dumps(first))
    assert json.loads(path.read_text())["queries"]


def _traffic_doc(**queries):
    return {
        "benchmarks": {},
        "traffic": {"queries": {
            name: {"bytes_pushdown": pushed, "bytes_baseline": base,
                   "reduction": round(1 - pushed / base, 4)}
            for name, (pushed, base) in queries.items()
        }},
    }


def test_traffic_check_passes_when_bytes_hold():
    reference = _traffic_doc(Q3=(60_000, 120_000))
    fresh = _traffic_doc(Q3=(61_000, 120_000))
    assert perf.check_regressions(reference, fresh, tolerance=0.25) == []


def test_traffic_check_fails_on_byte_regression():
    # No variance floor: traffic bytes are deterministic, so a 30% growth is
    # a real regression even though the absolute numbers are small.
    reference = _traffic_doc(Q3=(10_000, 20_000))
    fresh = _traffic_doc(Q3=(13_000, 20_000))
    failures = perf.check_regressions(reference, fresh, tolerance=0.25)
    assert failures and "traffic.Q3" in failures[0]


def test_traffic_check_fails_when_reduction_collapses():
    # Bytes within tolerance but the pushdown edge is gone: the optimizer
    # stopped pushing (e.g. both runs now execute the baseline plan).
    reference = _traffic_doc(Q3=(100_000, 200_000))
    fresh = _traffic_doc(Q3=(120_000, 122_000))
    failures = perf.check_regressions(reference, fresh, tolerance=0.25)
    assert failures and "stopped pushing" in failures[0]


def test_traffic_check_reports_individually_missing_queries():
    reference = _traffic_doc(Q3=(100, 200), Q5=(100, 200))
    fresh = _traffic_doc(Q5=(100, 200))
    failures = perf.check_regressions(reference, fresh)
    assert failures and "traffic.Q3" in failures[0]


def test_check_skips_sections_the_fresh_run_omitted():
    # --no-traffic: the traffic section is absent wholesale — intentional.
    reference = _traffic_doc(Q3=(100, 200))
    reference["benchmarks"] = _doc(1.0, x=1.0)["benchmarks"]
    timing_only = {"benchmarks": _doc(1.0, x=1.0)["benchmarks"]}
    assert perf.check_regressions(reference, timing_only) == []
    # --traffic-only: the timing section is empty — also intentional.
    traffic_only = _traffic_doc(Q3=(100, 200))
    assert perf.check_regressions(reference, traffic_only) == []


# ---------------------------------------------------------------------------
# Gray-failure section
# ---------------------------------------------------------------------------


def _gray_doc(clean=1.0, hedged=2.0, unhedged=15.0, failed=0):
    return {
        "gray": {
            "meta": {"seed": 11, "modes": ["clean", "hedged-degraded",
                                           "unhedged-degraded"]},
            "modes": {
                "clean": {"p50_ms": clean, "p95_ms": clean, "p99_ms": clean,
                          "p99_vs_clean": 1.0, "failed": failed},
                "hedged-degraded": {
                    "p50_ms": hedged, "p95_ms": hedged, "p99_ms": hedged,
                    "p99_vs_clean": hedged / clean, "failed": failed,
                },
                "unhedged-degraded": {
                    "p50_ms": unhedged, "p95_ms": unhedged, "p99_ms": unhedged,
                    "p99_vs_clean": unhedged / clean, "failed": failed,
                },
            },
        },
    }


def test_gray_check_passes_when_ratios_hold():
    assert perf.check_gray_regressions(_gray_doc(), _gray_doc(), 0.25) == []


def test_gray_check_fails_when_hedged_ratio_blows_past_the_cap():
    failures = perf.check_gray_regressions(
        _gray_doc(), _gray_doc(hedged=4.0), 0.25
    )
    assert failures and any("hedged" in line for line in failures)


def test_gray_check_fails_when_the_unhedged_tail_collapses():
    # If the bare system stops hurting, the hedged number proves nothing.
    failures = perf.check_gray_regressions(
        _gray_doc(), _gray_doc(unhedged=5.0), 0.25
    )
    assert failures and any("unhedged" in line for line in failures)


def test_gray_check_fails_on_failed_operations():
    failures = perf.check_gray_regressions(
        _gray_doc(), _gray_doc(failed=2), 0.25
    )
    assert failures and any("failed" in line for line in failures)


def test_gray_check_skips_an_omitted_section_but_not_a_missing_mode():
    reference = _gray_doc()
    assert perf.check_gray_regressions(reference, {}, 0.25) == []  # --no-gray
    partial = _gray_doc()
    del partial["gray"]["modes"]["unhedged-degraded"]
    failures = perf.check_gray_regressions(reference, partial, 0.25)
    assert failures and any("not in this run" in line for line in failures)


def test_cli_gray_only_checks_just_the_gray_section(tmp_path):
    output = tmp_path / "BENCH_gray.json"
    assert perf.main(["--gray-only", "--output", str(output)]) == 0
    document = json.loads(output.read_text())
    assert "gray" in document and "benchmarks" not in document
    # Checked against a reference that also carries timing and traffic
    # sections, only the gray section is compared (the nightly job's gate).
    reference = _gray_doc()
    reference["gray"] = document["gray"]
    reference["benchmarks"] = _doc(1.0, x=1.0)["benchmarks"]
    reference_path = tmp_path / "BENCH_ref.json"
    reference_path.write_text(json.dumps(reference))
    assert perf.main(["--gray-only", "--check", str(reference_path)]) == 0
