"""The perf harness: structure of BENCH_perf.json and the regression check.

The timing itself is machine-dependent and never asserted; what is pinned is
the document layout (future PRs extend the trajectory against it), the
determinism of the seeded workloads, and the ``--check`` comparison logic
(machine-speed normalisation, variance floor, tolerance).
"""

import json

from repro.bench import perf


def test_smoke_suite_structure(tmp_path):
    document = perf.run_suite(seed=0, repeat=1, scale="smoke", include_e2e=False)
    benches = document["benchmarks"]
    for name in (
        "calibration.spin",
        "serialization.encode_tpch",
        "serialization.encode_stb",
        "serialization.decode_tpch",
        "serialization.values_roundtrip",
        "hashing.partition_hash",
        "hashing.tuple_id_hash_key",
        "hashing.sha1_identifiers",
        "operators.select_project",
        "operators.hash_join",
        "operators.aggregate",
    ):
        assert name in benches, name
        entry = benches[name]
        assert entry["seconds"] > 0
        assert entry["ops"] > 0
        assert entry["us_per_op"] > 0
    assert document["meta"]["scale"] == "smoke"
    # The document is JSON-serialisable as produced.
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(document))
    assert json.loads(path.read_text())["benchmarks"]


def test_workloads_are_deterministic():
    assert perf._tpch_like_rows(50, 3) == perf._tpch_like_rows(50, 3)
    assert perf._stb_like_rows(50, 3) == perf._stb_like_rows(50, 3)
    assert perf._mixed_value_tuples(50, 3) == perf._mixed_value_tuples(50, 3)
    assert perf._tpch_like_rows(50, 3) != perf._tpch_like_rows(50, 4)


def _doc(spins, **benches):
    return {
        "benchmarks": {
            "calibration.spin": {"seconds": spins, "ops": 1, "us_per_op": 1.0},
            **{
                name: {"seconds": seconds, "ops": 1, "us_per_op": 1.0}
                for name, seconds in benches.items()
            },
        }
    }


def test_check_passes_within_tolerance():
    reference = _doc(1.0, x=1.0)
    fresh = _doc(1.0, x=1.2)
    assert perf.check_regressions(reference, fresh, tolerance=0.25) == []


def test_check_fails_beyond_tolerance():
    reference = _doc(1.0, x=1.0)
    fresh = _doc(1.0, x=1.3)
    failures = perf.check_regressions(reference, fresh, tolerance=0.25)
    assert failures and "x" in failures[0]


def test_check_normalises_by_machine_speed():
    # The fresh machine is 2x slower (calibration 2.0 vs 1.0); a benchmark
    # that is 1.8x slower in wall time is *faster* after normalisation.
    reference = _doc(1.0, x=1.0)
    fresh = _doc(2.0, x=1.8)
    assert perf.check_regressions(reference, fresh, tolerance=0.25) == []


def test_check_applies_variance_floor():
    # 10 ms vs 40 ms is a 4x regression but below the 50 ms floor: ignored.
    reference = _doc(1.0, x=0.010)
    fresh = _doc(1.0, x=0.040)
    assert perf.check_regressions(reference, fresh, tolerance=0.25) == []


def test_check_reports_missing_benchmarks():
    reference = _doc(1.0, x=1.0)
    fresh = _doc(1.0)
    failures = perf.check_regressions(reference, fresh)
    assert failures and "not in this run" in failures[0]


def test_cli_writes_output(tmp_path):
    output = tmp_path / "BENCH_perf.json"
    code = perf.main([
        "--scale", "smoke", "--repeat", "1", "--no-e2e",
        "--output", str(output),
    ])
    assert code == 0
    document = json.loads(output.read_text())
    assert "benchmarks" in document and "meta" in document


def test_cli_check_against_own_output_passes(tmp_path):
    output = tmp_path / "BENCH_perf.json"
    assert perf.main([
        "--scale", "smoke", "--repeat", "1", "--no-e2e",
        "--output", str(output),
    ]) == 0
    # A fresh run checked against its own numbers is within tolerance.
    assert perf.main([
        "--scale", "smoke", "--repeat", "2", "--no-e2e",
        "--check", str(output),
    ]) == 0
