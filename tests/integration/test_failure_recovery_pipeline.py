"""End-to-end failure handling across the whole stack (Sections V-C, V-D).

These tests kill nodes while realistic workloads (TPC-H, STBenchmark) are
executing and check the paper's headline guarantee: the surviving nodes still
produce the *exact* answer — complete and duplicate-free — whether recovery is
a full restart or the four-stage incremental recomputation.  They also cover
the storage layer's behaviour around failures: replicas keep every relation
version retrievable, publishing keeps working, and background replication
restores the replication factor afterwards.
"""

import pytest

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.query.reference import evaluate_query, normalise
from repro.query.service import RECOVERY_INCREMENTAL, RECOVERY_RESTART, QueryOptions
from repro.workloads import stbenchmark, tpch

TPCH_SCALE = 0.25
FAILURE_OFFSETS = (0.0005, 0.002)


@pytest.fixture(scope="module")
def tpch_instance():
    return tpch.generate(TPCH_SCALE, seed=5)


def fresh_tpch_cluster(tpch_instance, num_nodes=8, detection_delay=0.002):
    cluster = Cluster(num_nodes)
    cluster.network.failure_detection_delay = detection_delay
    cluster.publish_relations(tpch_instance.relation_list())
    cluster.enable_query_processing()
    return cluster


class TestTpchQueriesSurviveFailures:
    @pytest.mark.parametrize("query_name", ("Q1", "Q3", "Q10"))
    @pytest.mark.parametrize("mode", (RECOVERY_INCREMENTAL, RECOVERY_RESTART))
    def test_one_failure_mid_query(self, tpch_instance, query_name, mode):
        query = tpch.query(query_name)
        cluster = fresh_tpch_cluster(tpch_instance)
        cluster.fail_node(cluster.addresses[3], at_time=cluster.now + 0.001)
        result = cluster.query(query, options=QueryOptions(recovery_mode=mode))
        expected = evaluate_query(query, tpch_instance.relations)
        assert normalise(result.rows) == normalise(expected)
        # Fast queries may finish before the failure is even detected; when the
        # failure does land mid-query it must have been handled exactly once.
        assert result.statistics.failures_handled in (0, 1)

    @pytest.mark.parametrize("offset", FAILURE_OFFSETS)
    def test_incremental_recovery_at_varying_offsets(self, tpch_instance, offset):
        query = tpch.query("Q5")
        cluster = fresh_tpch_cluster(tpch_instance)
        cluster.fail_node(cluster.addresses[5], at_time=cluster.now + offset)
        result = cluster.query(query, options=QueryOptions(recovery_mode=RECOVERY_INCREMENTAL))
        expected = evaluate_query(query, tpch_instance.relations)
        assert normalise(result.rows) == normalise(expected)

    def test_two_failures_during_one_query(self, tpch_instance):
        query = tpch.query("Q3")
        cluster = fresh_tpch_cluster(tpch_instance, num_nodes=9)
        cluster.fail_node(cluster.addresses[2], at_time=cluster.now + 0.0008)
        cluster.fail_node(cluster.addresses[6], at_time=cluster.now + 0.002)
        result = cluster.query(query, options=QueryOptions(recovery_mode=RECOVERY_INCREMENTAL))
        expected = evaluate_query(query, tpch_instance.relations)
        assert normalise(result.rows) == normalise(expected)
        assert result.statistics.failures_handled == 2

    def test_recovery_modes_agree_with_each_other(self, tpch_instance):
        query = tpch.query("Q10")
        results = {}
        for mode in (RECOVERY_INCREMENTAL, RECOVERY_RESTART):
            cluster = fresh_tpch_cluster(tpch_instance)
            cluster.fail_node(cluster.addresses[4], at_time=cluster.now + 0.0015)
            results[mode] = cluster.query(query, options=QueryOptions(recovery_mode=mode))
        assert normalise(results[RECOVERY_INCREMENTAL].rows) == normalise(
            results[RECOVERY_RESTART].rows
        )


class TestStbenchmarkSurvivesFailures:
    @pytest.mark.parametrize("scenario", ("join", "correspondence"))
    def test_mapping_scenario_with_failure(self, scenario):
        instance = stbenchmark.generate(scenario, 400, seed=9)
        cluster = Cluster(6)
        cluster.network.failure_detection_delay = 0.002
        cluster.publish_relations(instance.relation_list())
        cluster.enable_query_processing()
        cluster.fail_node(cluster.addresses[2], at_time=cluster.now + 0.001)
        result = cluster.query(
            instance.query, options=QueryOptions(recovery_mode=RECOVERY_INCREMENTAL)
        )
        expected = evaluate_query(instance.query, instance.relations)
        assert normalise(result.rows) == normalise(expected)


class TestStorageAfterFailures:
    def make_relation(self, rows=400):
        data = RelationData(Schema("readings", ["r_id", "r_site", "r_value"], key=["r_id"]))
        for i in range(rows):
            data.add(f"r{i:04d}", f"site-{i % 11}", float(i % 97))
        return data

    def test_every_version_survives_a_failure(self):
        from repro.storage.client import UpdateBatch

        data = self.make_relation()
        cluster = Cluster(6, replication_factor=3)
        first = cluster.publish(data)
        batch = UpdateBatch(data.schema, modifications=[("r0000", "site-0", 1e6)])
        second = cluster.publish(batch)

        cluster.fail_node(cluster.addresses[1])
        cluster.run()

        old_version = cluster.retrieve("readings", epoch=first)
        new_version = cluster.retrieve("readings", epoch=second)
        assert len(old_version.rows()) == len(data)
        assert len(new_version.rows()) == len(data)
        old_values = {row[0]: row[2] for row in old_version.rows()}
        new_values = {row[0]: row[2] for row in new_version.rows()}
        assert old_values["r0000"] == 0.0
        assert new_values["r0000"] == 1e6

    def test_publish_and_query_continue_after_failure(self):
        from repro.storage.client import UpdateBatch

        data = self.make_relation()
        cluster = Cluster(6, replication_factor=3)
        cluster.publish(data)
        cluster.fail_node(cluster.addresses[2])
        cluster.run()

        # A new epoch published after the failure is visible to queries.
        batch = UpdateBatch(data.schema)
        for i in range(50):
            batch.inserts.append((f"x{i:04d}", "site-new", float(i)))
        cluster.publish(batch)
        result = cluster.query("SELECT COUNT(*) AS n FROM readings")
        assert result.rows[0][0] == 450

    def test_background_replication_restores_replica_count(self):
        data = self.make_relation(rows=200)
        cluster = Cluster(5, replication_factor=3)
        cluster.publish(data)
        cluster.fail_node(cluster.addresses[0])
        cluster.run()

        report = cluster.run_background_replication()
        assert report.items_copied >= 0  # a round always completes

        # After repair, (almost) every tuple is back on replication_factor
        # live nodes; the Bloom-filter exchange may skip a handful of items
        # per round (false positives make a member believe it already holds
        # them), but no tuple may ever drop below two live copies.
        live = cluster.live_addresses()
        holders: dict[tuple, set[str]] = {}
        for address in live:
            for tup in cluster.storage(address).all_local_tuples("readings"):
                key = (tup.tuple_id.key_values, tup.tuple_id.epoch)
                holders.setdefault(key, set()).add(address)
        assert holders, "expected replicated tuples on the surviving nodes"
        fully_replicated = sum(1 for nodes in holders.values() if len(nodes) >= 3)
        assert fully_replicated >= 0.99 * len(holders)
        assert min(len(nodes) for nodes in holders.values()) >= 2

    def test_query_correct_after_repair_and_new_membership(self):
        data = self.make_relation(rows=300)
        cluster = Cluster(6, replication_factor=3)
        cluster.publish(data)
        cluster.fail_node(cluster.addresses[3])
        cluster.run()
        cluster.run_background_replication()

        result = cluster.query(
            "SELECT r_site, COUNT(*) AS n FROM readings GROUP BY r_site"
        )
        assert sum(row[1] for row in result.rows) == 300
        assert len(result.rows) == 11
