"""End-to-end correctness: published workloads queried through the full stack.

These tests exercise the complete pipeline the paper's evaluation uses —
workload generator → publish into replicated versioned storage → cost-based
optimizer → distributed push execution — and compare every distributed result
against the single-process oracle evaluator.  They also check the properties
the distributed layers must not change: results are identical regardless of
the number of nodes, of the network profile, and of whether provenance
(recovery support) is enabled.
"""

import pytest

from repro.cluster import Cluster
from repro.net.profiles import EC2_LARGE, LAN_GIGABIT, wan_profile
from repro.query.reference import evaluate_query, normalise
from repro.query.service import QueryOptions
from repro.workloads import stbenchmark, tpch

#: Small-but-not-trivial sizes so the whole module stays fast.
TPCH_SCALE = 0.25
STB_TUPLES = 300


@pytest.fixture(scope="module")
def tpch_instance():
    return tpch.generate(TPCH_SCALE, seed=7)


@pytest.fixture(scope="module")
def tpch_cluster(tpch_instance):
    cluster = Cluster(6, profile=LAN_GIGABIT)
    cluster.publish_relations(tpch_instance.relation_list())
    return cluster


class TestTpchAgainstOracle:
    @pytest.mark.parametrize("query_name", tpch.QUERIES)
    def test_distributed_matches_reference(self, tpch_cluster, tpch_instance, query_name):
        query = tpch.query(query_name)
        result = tpch_cluster.query(query)
        expected = evaluate_query(query, tpch_instance.relations)
        assert normalise(result.rows) == normalise(expected)

    @pytest.mark.parametrize("query_name", tpch.QUERIES)
    def test_provenance_off_same_answers(self, tpch_cluster, tpch_instance, query_name):
        query = tpch.query(query_name)
        with_tags = tpch_cluster.query(query, options=QueryOptions(provenance_enabled=True))
        without_tags = tpch_cluster.query(query, options=QueryOptions(provenance_enabled=False))
        assert normalise(with_tags.rows) == normalise(without_tags.rows)

    def test_statistics_are_populated(self, tpch_cluster):
        result = tpch_cluster.query(tpch.query("Q3"))
        stats = result.statistics
        assert stats.participating_nodes == 6
        assert stats.execution_time > 0
        assert stats.bytes_total > 0
        assert stats.rows_shipped >= len(result.rows)


class TestStbenchmarkAgainstOracle:
    @pytest.mark.parametrize("scenario", stbenchmark.SCENARIOS)
    def test_distributed_matches_reference(self, scenario):
        instance = stbenchmark.generate(scenario, STB_TUPLES, seed=3)
        cluster = Cluster(5)
        cluster.publish_relations(instance.relation_list())
        result = cluster.query(instance.query)
        expected = evaluate_query(instance.query, instance.relations)
        assert normalise(result.rows) == normalise(expected)

    def test_copy_returns_every_tuple(self):
        instance = stbenchmark.generate("copy", STB_TUPLES, seed=3)
        cluster = Cluster(4)
        cluster.publish_relations(instance.relation_list())
        result = cluster.query(instance.query)
        assert len(result.rows) == STB_TUPLES


class TestClusterSizeInvariance:
    """Answers must not depend on how the data is partitioned."""

    @pytest.mark.parametrize("num_nodes", [1, 2, 5, 9])
    def test_tpch_q10_same_result_any_cluster_size(self, tpch_instance, num_nodes):
        query = tpch.query("Q10")
        cluster = Cluster(num_nodes)
        cluster.publish_relations(tpch_instance.relation_list())
        result = cluster.query(query)
        expected = evaluate_query(query, tpch_instance.relations)
        assert normalise(result.rows) == normalise(expected)

    @pytest.mark.parametrize("num_nodes", [1, 3, 8])
    def test_stb_join_same_result_any_cluster_size(self, num_nodes):
        instance = stbenchmark.generate("join", STB_TUPLES, seed=11)
        cluster = Cluster(num_nodes)
        cluster.publish_relations(instance.relation_list())
        result = cluster.query(instance.query)
        expected = evaluate_query(instance.query, instance.relations)
        assert normalise(result.rows) == normalise(expected)


class TestNetworkProfileInvariance:
    """The network profile changes time and traffic, never the answer."""

    @pytest.mark.parametrize("profile", [
        LAN_GIGABIT,
        EC2_LARGE,
        wan_profile(400, latency_ms=80.0),
    ], ids=["lan", "ec2", "wan-400KBps"])
    def test_q5_same_rows_on_every_profile(self, tpch_instance, profile):
        query = tpch.query("Q5")
        cluster = Cluster(4, profile=profile)
        cluster.publish_relations(tpch_instance.relation_list())
        result = cluster.query(query)
        expected = evaluate_query(query, tpch_instance.relations)
        assert normalise(result.rows) == normalise(expected)

    def test_wan_is_slower_than_lan_but_same_traffic_order(self, tpch_instance):
        query = tpch.query("Q10")
        results = {}
        for name, profile in (("lan", LAN_GIGABIT), ("wan", wan_profile(200, latency_ms=100.0))):
            cluster = Cluster(4, profile=profile)
            cluster.publish_relations(tpch_instance.relation_list())
            results[name] = cluster.query(query).statistics
        assert results["wan"].execution_time > results["lan"].execution_time
        # Same protocol, same data: traffic should be close (identical modulo
        # nondeterministic batching boundaries).
        lan_bytes = results["lan"].bytes_total
        wan_bytes = results["wan"].bytes_total
        assert abs(lan_bytes - wan_bytes) <= 0.2 * max(lan_bytes, wan_bytes)


class TestVersionedWorkloads:
    """Queries over historical epochs keep returning the old answers."""

    def test_tpch_updates_do_not_change_old_epoch(self, tpch_instance):
        from repro.storage.client import UpdateBatch

        query = tpch.query("Q6")
        cluster = Cluster(4)
        first_epoch = cluster.publish_relations(tpch_instance.relation_list())
        before = cluster.query(query, epoch=first_epoch)

        # Publish a second epoch that modifies a slice of lineitem rows.
        lineitem = tpch_instance.relations["lineitem"]
        modified = []
        for row in lineitem.rows[:50]:
            row = list(row)
            price_index = lineitem.schema.attributes.index("l_extendedprice")
            row[price_index] = row[price_index] * 100
            modified.append(tuple(row))
        cluster.publish(UpdateBatch(lineitem.schema, modifications=modified))

        after_old = cluster.query(query, epoch=first_epoch)
        after_new = cluster.query(query)
        assert normalise(after_old.rows) == normalise(before.rows)
        expected_old = evaluate_query(query, tpch_instance.relations)
        assert normalise(after_old.rows) == normalise(expected_old)
        # The modification multiplied revenue inputs, so the new epoch differs.
        assert normalise(after_new.rows) != normalise(before.rows)

    def test_each_epoch_remains_queryable(self):
        from repro.common.types import RelationData, Schema
        from repro.storage.client import UpdateBatch

        schema = Schema("events", ["e_id", "e_kind", "e_weight"], key=["e_id"])
        base = RelationData(schema)
        for i in range(120):
            base.add(f"e{i:03d}", f"kind-{i % 4}", i)
        cluster = Cluster(5)
        epochs = [cluster.publish(base)]
        # Three further epochs, each inserting another 40 rows.
        for round_index in range(3):
            batch = UpdateBatch(schema)
            for i in range(40):
                n = 120 + round_index * 40 + i
                batch.inserts.append((f"e{n:03d}", f"kind-{n % 4}", n))
            epochs.append(cluster.publish(batch))

        for index, epoch in enumerate(epochs):
            result = cluster.query("SELECT COUNT(*) AS n FROM events", epoch=epoch)
            assert result.rows[0][0] == 120 + 40 * index
