"""The full CDSS of Figure 1 running over the paper's storage/query subsystem.

Three collaborating participants with different local schemas publish and
import through the simulated cluster: a sequencing centre produces raw gene
annotations, a clinical group maps them into its own schema and annotates
further, and an analytics group runs OLAP-style queries directly over the
shared versioned storage.  The tests also reproduce the running example of
Section V (Example 5.1) and exercise the publish/import cycle while cluster
nodes fail.
"""

import pytest

from repro.cdss.mappings import SchemaMapping
from repro.cdss.participant import Orchestra, Participant, share_relations
from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.query.expressions import AggregateSpec, Min, col
from repro.query.logical import LogicalAggregate, LogicalJoin, LogicalQuery, LogicalScan
from repro.query.reference import evaluate_query, normalise

SEQ_SCHEMA = Schema("SeqGenes", ["gene_id", "symbol", "organism", "confidence"], key=["gene_id"])
CLINIC_SCHEMA = Schema("ClinicGenes", ["cg_id", "cg_symbol", "cg_organism"], key=["cg_id"])


def build_confederation(num_nodes=5):
    orchestra = Orchestra(num_nodes=num_nodes)
    sequencing = orchestra.add_participant(
        Participant("sequencing", [SEQ_SCHEMA], trust={"sequencing": 10, "import": 5})
    )
    mapping = SchemaMapping(
        "seq_to_clinic",
        CLINIC_SCHEMA,
        [SEQ_SCHEMA],
        outputs=[
            ("cg_id", col("gene_id")),
            ("cg_symbol", col("symbol")),
            ("cg_organism", col("organism")),
        ],
    )
    # The clinic trusts imported data over its own replica by default; the
    # curated-value test overrides this with a high local priority.
    clinic = orchestra.add_participant(
        Participant("clinic", [CLINIC_SCHEMA], mappings=[mapping],
                    trust={"clinic": 1, "import": 5})
    )
    return orchestra, sequencing, clinic


class TestPublishImportCycle:
    def test_multi_epoch_collaboration_converges(self):
        orchestra, sequencing, clinic = build_confederation()

        # Epoch 1: the sequencing centre publishes a first batch.
        for i in range(60):
            sequencing.insert("SeqGenes", f"g{i:03d}", f"SYM{i}", "human", 0.9)
        first = sequencing.publish()
        clinic.import_updates(first)
        assert len(clinic.local_database["ClinicGenes"].rows) == 60

        # Epoch 2: more data plus a correction to an existing gene.
        for i in range(60, 90):
            sequencing.insert("SeqGenes", f"g{i:03d}", f"SYM{i}", "mouse", 0.7)
        sequencing.modify("SeqGenes", "g000", "SYM0-corrected", "human", 0.95)
        second = sequencing.publish()
        report = clinic.import_updates(second)
        assert report.epoch == second
        rows = {row[0]: row for row in clinic.local_database["ClinicGenes"].rows}
        assert len(rows) == 90
        assert rows["g000"][1] == "SYM0-corrected"

        # Importing the *old* epoch again must not resurrect the old value.
        clinic.import_updates(second)
        rows = {row[0]: row for row in clinic.local_database["ClinicGenes"].rows}
        assert rows["g000"][1] == "SYM0-corrected"

    def test_import_of_historical_epoch_sees_old_state(self):
        orchestra, sequencing, clinic = build_confederation()
        sequencing.insert("SeqGenes", "g1", "BRCA1", "human", 0.99)
        first = sequencing.publish()
        sequencing.modify("SeqGenes", "g1", "BRCA1-v2", "human", 0.99)
        sequencing.publish()

        clinic.import_updates(first)
        assert clinic.local_database["ClinicGenes"].rows == [("g1", "BRCA1", "human")]

    def test_curated_values_win_reconciliation(self):
        from repro.cdss.reconciliation import Reconciler

        orchestra, sequencing, clinic = build_confederation()
        clinic.reconciler = Reconciler({"clinic": 10, "import": 1})
        clinic.local_database["ClinicGenes"].add("g5", "curated-name", "human")
        sequencing.insert("SeqGenes", "g5", "auto-name", "human", 0.5)
        report = clinic.import_updates(sequencing.publish())
        assert clinic.local_database["ClinicGenes"].rows == [("g5", "curated-name", "human")]
        assert report.reconciliation is not None
        assert len(report.reconciliation.conflicts) == 1

    def test_analytics_participant_queries_shared_state(self):
        orchestra, sequencing, _clinic = build_confederation()
        for i in range(80):
            sequencing.insert(
                "SeqGenes", f"g{i:03d}", f"SYM{i}", "human" if i % 3 else "mouse", 0.5 + (i % 5) / 10
            )
        sequencing.publish()
        result = orchestra.run_query(
            "SELECT organism, COUNT(*) AS genes, MAX(confidence) AS best "
            "FROM SeqGenes GROUP BY organism"
        )
        counts = {row[0]: row[1] for row in result.rows}
        assert counts == {"human": 53, "mouse": 27}

    def test_cycle_survives_storage_node_failure(self):
        orchestra, sequencing, clinic = build_confederation(num_nodes=6)
        for i in range(100):
            sequencing.insert("SeqGenes", f"g{i:03d}", f"SYM{i}", "human", 0.8)
        first = sequencing.publish()

        orchestra.cluster.fail_node(orchestra.cluster.addresses[2])
        orchestra.cluster.run()

        clinic.import_updates(first)
        assert len(clinic.local_database["ClinicGenes"].rows) == 100

        # Publishing keeps working on the surviving nodes.
        for i in range(100, 120):
            sequencing.insert("SeqGenes", f"g{i:03d}", f"SYM{i}", "rat", 0.6)
        second = sequencing.publish()
        clinic.import_updates(second)
        assert len(clinic.local_database["ClinicGenes"].rows) == 120


class TestPaperExample51:
    """Example 5.1: SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x."""

    def make_relations(self):
        r = RelationData(Schema("R", ["x", "y"], key=["x"]))
        s = RelationData(Schema("S", ["yy", "z"], key=["yy"]))
        # The tuples of the running example (Figures 4 and 6) plus extra rows
        # so the rehash exchanges actually move data between the nodes.
        r.add("a", "b")
        r.add("c", "d")
        r.add("f", "a")
        r.add("b", "c")
        r.add("e", "e")
        s.add("b", "j")
        s.add("f", "k")
        s.add("d", "m")
        for i in range(40):
            r.add(f"x{i}", f"y{i}")
            s.add(f"y{i}", i)
        return r, s

    def example_query(self, r, s):
        join = LogicalJoin(LogicalScan(r.schema), LogicalScan(s.schema), [("y", "yy")])
        aggregate = LogicalAggregate(join, ["x"], [AggregateSpec("min_z", Min(), col("z"))])
        return LogicalQuery(aggregate, name="example_5_1")

    @pytest.mark.parametrize("num_nodes", [3, 4])
    def test_distributed_plan_matches_reference(self, num_nodes):
        r, s = self.make_relations()
        query = self.example_query(r, s)
        cluster = Cluster(num_nodes)
        cluster.publish_relations([r, s])
        result = cluster.query(query)
        expected = evaluate_query(query, {"R": r, "S": s})
        assert normalise(result.rows) == normalise(expected)
        # The example's own tuples: R(a,b) joins S(b,j), so x=a has MIN(z)='j'.
        by_x = dict(result.rows)
        assert by_x["a"] == "j"

    def test_sql_form_of_example(self):
        r, s = self.make_relations()
        cluster = Cluster(3)
        cluster.publish_relations([r, s])
        result = cluster.query("SELECT x, MIN(z) AS min_z FROM R, S WHERE y = yy GROUP BY x")
        expected = evaluate_query(self.example_query(r, s), {"R": r, "S": s})
        assert normalise(result.rows) == normalise(expected)

    def test_example_with_failure_during_execution(self):
        from repro.query.service import RECOVERY_INCREMENTAL, QueryOptions

        r, s = self.make_relations()
        query = self.example_query(r, s)
        cluster = Cluster(4)
        cluster.network.failure_detection_delay = 0.001
        cluster.publish_relations([r, s])
        cluster.enable_query_processing()
        cluster.fail_node(cluster.addresses[1], at_time=cluster.now + 0.0005)
        result = cluster.query(query, options=QueryOptions(recovery_mode=RECOVERY_INCREMENTAL))
        expected = evaluate_query(query, {"R": r, "S": s})
        assert normalise(result.rows) == normalise(expected)


class TestSharedStorageScales:
    def test_many_participants_one_epoch_each(self):
        orchestra = Orchestra(num_nodes=6)
        participants = []
        for index in range(4):
            schema = Schema(f"Obs{index}", ["o_id", "o_value"], key=["o_id"])
            participant = orchestra.add_participant(Participant(f"lab-{index}", [schema]))
            data = RelationData(schema)
            for i in range(50):
                data.add(f"lab{index}-{i:03d}", i * (index + 1))
            share_relations(participant, [data])
            participants.append((participant, schema))

        epoch = orchestra.publish_all()
        assert epoch >= len(participants)
        for index, (participant, schema) in enumerate(participants):
            stored = orchestra.cluster.retrieve(schema.name)
            assert len(stored.rows()) == 50
