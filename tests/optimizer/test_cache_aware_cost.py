"""Cache-aware costing: warm relations are priced below cold ones."""

from repro.cache import CacheConfig
from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.optimizer.catalog import Catalog
from repro.optimizer.cost import CostModel, MachineProfile
from repro.optimizer.planner import compile_query
from repro.query.logical import LogicalJoin, LogicalQuery, LogicalScan


class _FakeResidency:
    """Minimal residency stub: fixed cached bytes per relation."""

    def __init__(self, cached: dict[str, int]):
        self._cached = cached

    def cached_bytes(self, relation: str) -> int:
        return self._cached.get(relation, 0)


class TestScanCostDiscount:
    def test_warm_relation_scans_cheaper_than_cold(self):
        machine = MachineProfile()
        cold = CostModel(machine)
        warm = CostModel(machine, residency=_FakeResidency({"R": 50_000}))
        rows, row_size = 1000.0, 100.0
        assert warm.scan_cost(rows, row_size, relation="R") < cold.scan_cost(
            rows, row_size, relation="R"
        )
        # Another relation is untouched by R's residency.
        assert warm.scan_cost(rows, row_size, relation="S") == cold.scan_cost(
            rows, row_size, relation="S"
        )

    def test_fully_resident_relation_pays_no_disk_cost(self):
        machine = MachineProfile()
        model = CostModel(machine, residency=_FakeResidency({"R": 10**9}))
        rows, row_size = 1000.0, 100.0
        per_node = rows / machine.num_nodes
        expected = per_node / machine.tuples_per_second_cpu + machine.latency_seconds
        assert model.scan_cost(rows, row_size, relation="R") == expected

    def test_fraction_clamped_to_one(self):
        model = CostModel(MachineProfile(), residency=_FakeResidency({"R": 10**12}))
        assert model.warm_fraction("R", 100.0) == 1.0
        assert model.warm_fraction(None, 100.0) == 0.0


class TestPlannerUsesResidency:
    def _query_and_catalog(self):
        r = RelationData(Schema("R", ["x", "a"], key=["x"]))
        s = RelationData(Schema("S", ["y", "x2"], key=["y"]))
        for i in range(2000):
            r.add(f"x{i}", i)
        for i in range(50):
            s.add(f"y{i}", f"x{i}")
        catalog = Catalog()
        catalog.register_relation(r)
        catalog.register_relation(s)
        query = LogicalQuery(
            LogicalJoin(LogicalScan(r.schema), LogicalScan(s.schema), [("x", "x2")])
        )
        return query, catalog

    def test_estimated_cost_drops_when_scanned_relation_is_warm(self):
        query, catalog = self._query_and_catalog()
        cold = compile_query(query, catalog)
        warm = compile_query(
            query, catalog, residency=_FakeResidency({"R": 10**9, "S": 10**9})
        )
        assert warm.estimated_cost < cold.estimated_cost

    def test_residency_accounting_tracks_eviction(self):
        from repro.cache import NodeCache
        from repro.common.types import TupleId, VersionedTuple
        from repro.storage.pages import PageId

        def batch(relation, seq, rows=4):
            return [
                VersionedTuple(relation, TupleId((f"{relation}-{seq}-{i}",), 1),
                               (f"{relation}-{seq}-{i}", i))
                for i in range(rows)
            ]

        cache = NodeCache(2000)
        page_ids = [PageId("R", 1, seq) for seq in range(6)]
        for page_id in page_ids:
            cache.put_scan(page_id, batch("R", page_id.sequence))
        resident = cache.cached_bytes_for_relation("R")
        assert resident == sum(e.size for e in cache.store.entries()
                               if e.key[0] == "scan")
        # Incremental accounting shrinks with invalidation/eviction.
        removed = next(e.size for e in cache.store.entries()
                       if e.key == ("scan", page_ids[-1]))
        cache.store.invalidate(("scan", page_ids[-1]))
        assert cache.cached_bytes_for_relation("R") == resident - removed
        assert cache.cached_bytes_for_relation("S") == 0
        # Pages and coordinator records are metadata over the same tuples and
        # must not inflate the residency estimate.
        from repro.common.hashing import KeyRange
        from repro.storage.pages import IndexPage, PageRef

        cache.put_page(IndexPage(PageRef(PageId("R", 1, 99), KeyRange(0, 10)), []))
        assert cache.cached_bytes_for_relation("R") == resident - removed

    def test_cluster_passes_real_residency_through(self):
        cluster = Cluster(4, cache_config=CacheConfig())
        data = RelationData(Schema("T", ["t_id", "t_v"], key=["t_id"]))
        for i in range(300):
            data.add(f"t{i}", i)
        cluster.publish_relations([data])
        # Warm the node cache through a retrieval, then check the residency
        # snapshot the planner receives reports those bytes.
        cluster.retrieve("T")
        residency = cluster.nodes[cluster.first_live_address()].cache.residency()
        assert residency.cached_bytes("T") > 0
        model = CostModel(MachineProfile.for_cluster(cluster), residency=residency)
        assert model.warm_fraction("T", float(residency.cached_bytes("T"))) == 1.0
