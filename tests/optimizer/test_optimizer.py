"""Tests for the catalog, cost model and Volcano-style plan search."""

import pytest

from repro.common.errors import OptimizerError, PlanError
from repro.common.types import RelationData, Schema
from repro.optimizer.catalog import Catalog, TableStatistics
from repro.optimizer.cost import CostModel, MachineProfile
from repro.optimizer.planner import PlannerOptions, compile_query
from repro.query.expressions import AggregateSpec, Sum, and_, col, lit
from repro.query.logical import (
    LogicalAggregate,
    LogicalJoin,
    LogicalProject,
    LogicalQuery,
    LogicalScan,
    LogicalSelect,
)
from repro.query.physical import (
    COLLECT_MERGE_PARTIALS,
    COLLECT_REPLACE_GROUPS,
    PhysAggregate,
    PhysHashJoin,
    PhysRehash,
)

R = Schema("R", ["r_id", "r_group", "r_value"], key=["r_id"])
S = Schema("S", ["s_id", "s_group", "s_value"], key=["s_id"])
T = Schema("T", ["t_id", "t_sref", "t_note"], key=["t_id"])


def make_catalog(r_rows=10_000, s_rows=1_000, t_rows=100):
    catalog = Catalog()
    catalog.register(R, TableStatistics(r_rows, 60, {"r_id": r_rows, "r_group": 50, "r_value": r_rows}))
    catalog.register(S, TableStatistics(s_rows, 60, {"s_id": s_rows, "s_group": 50, "s_value": s_rows}))
    catalog.register(T, TableStatistics(t_rows, 40, {"t_id": t_rows, "t_sref": t_rows}))
    return catalog


class TestCatalog:
    def test_from_relation_data(self):
        data = RelationData(Schema("X", ["a", "b"], key=["a"]))
        for i in range(100):
            data.add(f"k{i}", i % 10)
        statistics = TableStatistics.from_relation(data)
        assert statistics.row_count == 100
        assert statistics.distinct["a"] == 100
        assert statistics.distinct["b"] == 10
        assert statistics.avg_row_size > 0

    def test_sampling_large_relations(self):
        data = RelationData(Schema("Y", ["a"], key=["a"]))
        for i in range(20_000):
            data.add(i)
        statistics = TableStatistics.from_relation(data, sample_limit=1000)
        assert statistics.row_count == 20_000
        assert statistics.distinct["a"] > 1000

    def test_catalog_registration_and_lookup(self):
        catalog = make_catalog()
        assert "R" in catalog
        assert catalog.schema("R") is R
        assert catalog.statistics("S").row_count == 1_000
        assert set(catalog.relations()) == {"R", "S", "T"}

    def test_unknown_relation_raises(self):
        catalog = Catalog()
        with pytest.raises(OptimizerError):
            catalog.schema("missing")
        with pytest.raises(OptimizerError):
            catalog.statistics("missing")

    def test_distinct_default(self):
        statistics = TableStatistics(1000, 50)
        assert statistics.distinct_values("anything") >= 1


class TestCostModel:
    def setup_method(self):
        self.model = CostModel(MachineProfile(num_nodes=8))
        self.statistics = TableStatistics(10_000, 60, {"a": 100, "k": 10_000})

    def test_equality_selectivity_uses_distinct(self):
        assert self.model.selectivity(col("a").eq(5), self.statistics) == pytest.approx(1 / 100)

    def test_range_selectivity(self):
        assert self.model.selectivity(col("a").lt(5), self.statistics) == pytest.approx(1 / 3)

    def test_conjunction_multiplies(self):
        predicate = and_(col("a").eq(5), col("k").eq("x"))
        expected = (1 / 100) * (1 / 10_000)
        assert self.model.selectivity(predicate, self.statistics) == pytest.approx(expected)

    def test_none_predicate(self):
        assert self.model.selectivity(None, self.statistics) == 1.0

    def test_more_nodes_scan_cheaper(self):
        few = CostModel(MachineProfile(num_nodes=2)).scan_cost(100_000, 60)
        many = CostModel(MachineProfile(num_nodes=16)).scan_cost(100_000, 60)
        assert many < few

    def test_rehash_cost_scales_with_rows(self):
        assert self.model.rehash_cost(200_000, 60) > self.model.rehash_cost(10_000, 60)

    def test_ship_cost_not_parallel(self):
        # Collection at the initiator does not get cheaper with more nodes.
        few = CostModel(MachineProfile(num_nodes=2)).ship_cost(100_000, 60)
        many = CostModel(MachineProfile(num_nodes=32)).ship_cost(100_000, 60)
        assert many == pytest.approx(few)

    def test_join_cardinality_containment(self):
        assert self.model.join_cardinality(1000, 100, 100, 100) == pytest.approx(1000)


class TestPlanCompilation:
    def test_single_relation_scan(self):
        query = LogicalQuery(LogicalScan(R), name="scan")
        compiled = compile_query(query, make_catalog())
        scans = compiled.plan.scans()
        assert len(scans) == 1 and scans[0].schema.name == "R"

    def test_predicate_pushdown_and_sargable_split(self):
        predicate = and_(col("r_id").eq("k5"), col("r_value").gt(100))
        query = LogicalQuery(LogicalSelect(LogicalScan(R), predicate), name="filter")
        compiled = compile_query(query, make_catalog())
        scan = compiled.plan.scans()[0]
        assert scan.sargable is not None and scan.sargable.references() == {"r_id"}
        assert scan.residual is not None and scan.residual.references() == {"r_value"}

    def test_covering_scan_detected(self):
        query = LogicalQuery(
            LogicalProject(LogicalScan(R), [("r_id", col("r_id"))]), name="cover"
        )
        compiled = compile_query(query, make_catalog())
        assert compiled.plan.scans()[0].covering

    def test_covering_scan_can_be_disabled(self):
        query = LogicalQuery(
            LogicalProject(LogicalScan(R), [("r_id", col("r_id"))]), name="cover"
        )
        compiled = compile_query(
            query, make_catalog(), options=PlannerOptions(enable_covering_scans=False)
        )
        assert not compiled.plan.scans()[0].covering

    def test_join_on_partition_key_avoids_rehash_on_that_side(self):
        join = LogicalJoin(LogicalScan(S), LogicalScan(T), [("s_id", "t_sref")])
        query = LogicalQuery(join, name="colocated")
        compiled = compile_query(query, make_catalog())
        rehashes = compiled.plan.rehashes()
        # S is partitioned on s_id already, so only T needs repartitioning.
        assert len(rehashes) == 1
        assert rehashes[0].keys == ("t_sref",)

    def test_join_on_non_key_rehashes_both_sides(self):
        join = LogicalJoin(LogicalScan(R), LogicalScan(S), [("r_group", "s_group")])
        query = LogicalQuery(join, name="both_rehash")
        compiled = compile_query(query, make_catalog())
        assert len(compiled.plan.rehashes()) == 2

    def test_three_way_join_builds_smaller_relations_first(self):
        j1 = LogicalJoin(LogicalScan(R), LogicalScan(S), [("r_group", "s_group")])
        j2 = LogicalJoin(j1, LogicalScan(T), [("s_id", "t_sref")])
        query = LogicalQuery(j2, name="three")
        compiled = compile_query(query, make_catalog())
        joins = [op for op in compiled.plan.operators() if isinstance(op, PhysHashJoin)]
        assert len(joins) == 2
        assert compiled.estimated_cost > 0
        assert compiled.search_statistics.subsets_explored >= 6

    def test_small_group_aggregate_merges_at_initiator(self):
        query = LogicalQuery(
            LogicalAggregate(LogicalScan(R), ["r_group"], [AggregateSpec("t", Sum(), col("r_value"))]),
            name="small_groups",
        )
        compiled = compile_query(query, make_catalog())
        assert compiled.plan.root.collector_mode == COLLECT_MERGE_PARTIALS
        aggregates = [op for op in compiled.plan.operators() if isinstance(op, PhysAggregate)]
        assert len(aggregates) == 1 and not aggregates[0].merge_partials

    def test_large_group_aggregate_rehashes(self):
        query = LogicalQuery(
            LogicalAggregate(LogicalScan(R), ["r_id"], [AggregateSpec("t", Sum(), col("r_value"))]),
            name="large_groups",
        )
        compiled = compile_query(query, make_catalog(), options=PlannerOptions(small_group_threshold=10))
        assert compiled.plan.root.collector_mode == COLLECT_REPLACE_GROUPS
        aggregates = [op for op in compiled.plan.operators() if isinstance(op, PhysAggregate)]
        assert len(aggregates) == 2
        assert any(isinstance(op, PhysRehash) for op in compiled.plan.operators())

    def test_projection_pushed_below_ship(self):
        query = LogicalQuery(
            LogicalProject(LogicalScan(R), [("r_id", col("r_id")), ("double", col("r_value") * lit(2))]),
            name="proj",
        )
        compiled = compile_query(query, make_catalog())
        assert compiled.plan.output_attributes() == ("r_id", "double")

    def test_needed_columns_reduce_scan_width(self):
        query = LogicalQuery(
            LogicalProject(LogicalScan(R), [("r_value", col("r_value"))]), name="narrow"
        )
        compiled = compile_query(query, make_catalog())
        scan = compiled.plan.scans()[0]
        assert set(scan.columns) <= {"r_id", "r_value"}

    def test_duplicate_attribute_names_rejected(self):
        other = Schema("R2", ["r_id", "other"], key=["r_id"])
        catalog = make_catalog()
        catalog.register(other, TableStatistics(10, 20, {}))
        join = LogicalJoin(LogicalScan(R), LogicalScan(other), [("r_id", "other")])
        with pytest.raises(PlanError):
            compile_query(LogicalQuery(join, name="dup"), catalog)

    def test_bandwidth_sensitive_machine_profile(self):
        query = LogicalQuery(
            LogicalJoin(LogicalScan(R), LogicalScan(S), [("r_group", "s_group")]), name="bw"
        )
        fast = compile_query(query, make_catalog(), machine=MachineProfile(num_nodes=8))
        slow = compile_query(
            query, make_catalog(),
            machine=MachineProfile(num_nodes=8, bytes_per_second_network=100_000.0),
        )
        assert slow.estimated_cost > fast.estimated_cost

    def test_branch_and_bound_prunes(self):
        j1 = LogicalJoin(LogicalScan(R), LogicalScan(S), [("r_group", "s_group")])
        j2 = LogicalJoin(j1, LogicalScan(T), [("s_id", "t_sref")])
        compiled = compile_query(LogicalQuery(j2, name="prune"), make_catalog())
        statistics = compiled.search_statistics
        assert statistics.alternatives_considered > 0
