"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that editable installs
(``pip install -e .``) work in offline environments whose setuptools lacks the
``wheel`` package required by the PEP 517 editable-install path.
"""

from setuptools import setup

setup()
