"""Quickstart: publish a relation to a simulated CDSS cluster and query it.

Run with::

    python examples/quickstart.py

The example builds a 4-node simulated deployment, publishes two relations into
the replicated versioned storage (epoch 1), runs a distributed join +
aggregation through the cost-based optimizer and the push-style query engine,
and finally shows versioned retrieval (a modification published at epoch 2
does not affect queries at epoch 1).
"""

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.storage.client import UpdateBatch

def main() -> None:
    # ------------------------------------------------------------------ setup
    cluster = Cluster(num_nodes=4, replication_factor=3)

    projects = RelationData(Schema("projects", ["p_id", "p_area", "p_budget"], key=["p_id"]))
    for i in range(200):
        projects.add(f"proj-{i:03d}", ["genomics", "proteomics", "imaging"][i % 3], 10_000 + i * 37)

    samples = RelationData(Schema("samples", ["s_id", "s_project", "s_quality"], key=["s_id"]))
    for i in range(600):
        samples.add(f"sample-{i:04d}", f"proj-{i % 200:03d}", round(0.5 + (i % 50) / 100, 2))

    epoch = cluster.publish_relations([projects, samples])
    print(f"published {len(projects)} projects and {len(samples)} samples at epoch {epoch}")

    # ------------------------------------------------------------- SQL queries
    result = cluster.query(
        "SELECT p_area, COUNT(*) AS n, AVG(s_quality) AS avg_quality "
        "FROM projects, samples WHERE p_id = s_project GROUP BY p_area"
    )
    print("\nsamples per research area (distributed join + aggregation):")
    for area, count, quality in sorted(result.rows):
        print(f"  {area:12s}  samples={count:4d}  avg quality={quality:.3f}")
    stats = result.statistics
    print(f"  -> {stats.participating_nodes} nodes, "
          f"{stats.execution_time * 1000:.2f} simulated ms, "
          f"{stats.bytes_total / 1000:.1f} KB of network traffic")

    # ----------------------------------------------------------- versioned data
    change = UpdateBatch(projects.schema, modifications=[("proj-000", "genomics", 999_999)])
    new_epoch = cluster.publish(change)
    old = cluster.query("SELECT MAX(p_budget) AS top FROM projects", epoch=epoch)
    new = cluster.query("SELECT MAX(p_budget) AS top FROM projects", epoch=new_epoch)
    print(f"\nmax budget at epoch {epoch}: {old.rows[0][0]}")
    print(f"max budget at epoch {new_epoch}: {new.rows[0][0]} (after the published modification)")


if __name__ == "__main__":
    main()
