"""Repeated TPC-H analytics over the version-keyed cache subsystem.

Run with::

    python examples/cached_analytics.py

The example builds an 8-node cluster *with caching enabled*, loads a TPC-H
instance, and runs the same analytical queries repeatedly — the dashboard
pattern: every refresh re-issues identical queries over data that only
changes when someone publishes a new version.

It prints, for each query, the cold execution (everything crosses the
simulated network) next to the warm one (served from the initiator's
semantic result cache: zero bytes shipped), then publishes a new relation
version to show the cache bypassing stale entries, and finally dumps the
cluster-wide cache counters.
"""

from repro.bench import format_table
from repro.cache import CacheConfig
from repro.cluster import Cluster
from repro.storage.client import UpdateBatch
from repro.workloads import tpch


def measure(cluster: Cluster, query_name: str) -> dict:
    before = cluster.traffic_snapshot()
    result = cluster.query(tpch.query(query_name))
    traffic = before.delta(cluster.traffic_snapshot())
    return {
        "query": query_name,
        "latency_ms": result.statistics.execution_time * 1000.0,
        "bytes_shipped": traffic.total_bytes,
        "rows": len(result.rows),
        "served_from_cache": result.statistics.result_cache_hit,
    }


def main() -> None:
    instance = tpch.generate(scale_factor=1.0, seed=0)
    cluster = Cluster(8, cache_config=CacheConfig(policy="greedy-dual"))
    cluster.publish_relations(instance.relation_list())
    print(f"published {len(instance.relation_list())} TPC-H relations "
          f"on {len(cluster)} nodes (caching: greedy-dual)\n")

    queries = ("Q1", "Q3", "Q6")
    rows = []
    for query_name in queries:          # cold pass: everything over the wire
        rows.append({**measure(cluster, query_name), "run": "cold"})
    for query_name in queries:          # warm pass: semantic result cache
        rows.append({**measure(cluster, query_name), "run": "warm"})
    print("cold vs. warm executions of the same dashboard queries:")
    print(format_table(rows, ["query", "run", "latency_ms", "bytes_shipped",
                              "rows", "served_from_cache"]))

    # Publish a new version of lineitem: the warm entries covering it become
    # stale and exactly those are bypassed on the next refresh.
    lineitem = instance.relations["lineitem"]
    price = lineitem.schema.attributes.index("l_extendedprice")
    modified = [tuple(row[:price]) + (row[price] * 2,) + tuple(row[price + 1:])
                for row in lineitem.rows[:25]]
    cluster.publish(UpdateBatch(lineitem.schema, modifications=modified))
    print("\npublished a new lineitem version (epoch "
          f"{cluster.current_epoch}); refreshing the dashboard:")
    refreshed = [{**measure(cluster, q), "run": "refresh"} for q in queries]
    print(format_table(refreshed, ["query", "run", "latency_ms", "bytes_shipped",
                                   "rows", "served_from_cache"]))

    stats = cluster.cache_statistics()
    print("\ncluster-wide cache counters:")
    for tier in ("node", "result"):
        s = stats[tier]
        print(f"  {tier:6s}  hits={s.hits:4d}  misses={s.misses:4d}  "
              f"hit_rate={s.hit_rate:.2f}  bytes_saved={s.bytes_saved:,}  "
              f"invalidations={s.invalidations}")


if __name__ == "__main__":
    main()
