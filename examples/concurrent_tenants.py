"""Multi-tenant concurrent traffic through the runtime layer.

Run with::

    python examples/concurrent_tenants.py

Eight closed-loop tenants share one cached 8-node cluster, each submitting
TPC-H dashboard queries from its own node through an asynchronous
:class:`~repro.runtime.session.Session`.  The admission-controlled scheduler
caps how many queries run at once (with a per-tenant cap so no tenant can
monopolise the cluster); everything beyond the caps waits in the fair-share
admission queue.

The example prints the serial baseline next to the concurrent run
(throughput, p50/p99 latency, queueing), the per-tenant breakdown, the
scheduler's own counters, and the cluster-wide cache statistics — warm
repeats of a tenant's dashboard are served from the semantic result cache
even while other tenants' cold queries are still in flight.
"""

from repro.bench import format_table
from repro.cache import CacheConfig
from repro.cluster import Cluster
from repro.runtime import ClosedLoopDriver, SchedulerConfig, percentile
from repro.workloads import tpch

QUERIES = ("Q1", "Q6", "Q3")
OPS_PER_TENANT = 6


def build_cluster() -> Cluster:
    instance = tpch.generate(scale_factor=0.5, seed=0)
    cluster = Cluster(
        8,
        cache_config=CacheConfig(policy="greedy-dual"),
        scheduler_config=SchedulerConfig(
            max_in_flight_total=6,
            max_in_flight_per_initiator=2,
            policy="fair",
        ),
    )
    cluster.publish_relations(instance.relation_list())
    return cluster


def run_tenants(num_tenants: int) -> dict:
    cluster = build_cluster()
    driver = ClosedLoopDriver(
        cluster.runtime,
        num_clients=num_tenants,
        # Each tenant cycles through the dashboard queries; repeats of a
        # query it already ran warm its node's semantic result cache.
        make_op=lambda session, _tenant, op_index: session.submit_query(
            tpch.query(QUERIES[op_index % len(QUERIES)])
        ),
        ops_per_client=OPS_PER_TENANT,
    )
    report = driver.run()
    return {"cluster": cluster, "report": report}


def main() -> None:
    serial = run_tenants(1)["report"]
    concurrent_run = run_tenants(8)
    concurrent = concurrent_run["report"]
    cluster = concurrent_run["cluster"]

    print("8 tenants, closed loop, one outstanding query each "
          f"({OPS_PER_TENANT} dashboard queries per tenant):\n")
    rows = [
        {"run": label, **{
            "ops": rep.completed,
            "throughput_qps": rep.throughput,
            "p50_ms": rep.p50_latency * 1000.0,
            "p99_ms": rep.p99_latency * 1000.0,
            "mean_queue_delay_ms": rep.mean_queue_delay * 1000.0,
        }}
        for label, rep in (("serial (1 tenant)", serial), ("8 tenants", concurrent))
    ]
    print(format_table(rows, ["run", "ops", "throughput_qps", "p50_ms", "p99_ms",
                              "mean_queue_delay_ms"]))

    print("\nper-tenant latency (simulated ms):")
    tenant_rows = []
    for tenant in range(8):
        latencies = [
            record.latency * 1000.0
            for record in concurrent.records
            if record.client == tenant and record.ok
        ]
        tenant_rows.append({
            "tenant": tenant,
            # Tenants are spread round-robin over the live nodes.
            "initiator": f"node-{tenant % len(cluster):03d}",
            "ops": len(latencies),
            "p50_ms": percentile(latencies, 0.50),
            "p99_ms": percentile(latencies, 0.99),
        })
    print(format_table(tenant_rows, ["tenant", "initiator", "ops", "p50_ms", "p99_ms"]))

    stats = concurrent.scheduler
    print("\nscheduler: "
          f"admitted={stats['admitted']} max_in_flight={stats['max_in_flight']} "
          f"peak_queued={stats['peak_queued']} rejected={stats['rejected']}")

    cache = cluster.cache_statistics()
    print("cache:     "
          f"result hits={cache['result'].hits} misses={cache['result'].misses} "
          f"bytes_saved={cache['result'].bytes_saved}; "
          f"node hits={cache['node'].hits} bytes_saved={cache['node'].bytes_saved}")
    warm_hits = sum(
        1 for record in concurrent.records if record.ok and record.latency < 1e-4
    )
    print(f"\n{warm_hits} of {concurrent.completed} tenant queries were warm "
          "(near-instant result-cache hits) despite the concurrent cold traffic.")


if __name__ == "__main__":
    main()
