"""A small collaborative data sharing confederation (the paper's motivating use).

Two research groups share gene annotations through ORCHESTRA's publish /
import cycle:

* *UniLab* curates a gene catalogue in its own schema and publishes updates;
* *BioCenter* keeps a differently-shaped local table, imports UniLab's data
  through a schema mapping, and resolves conflicts with its own curated values
  using trust priorities.

Run with::

    python examples/life_sciences_sharing.py
"""

from repro.cdss import Orchestra, Participant, SchemaMapping
from repro.common.types import Schema
from repro.query.expressions import col, concat, lit

UNILAB_GENES = Schema("unilab_genes", ["u_gene", "u_symbol", "u_organism"], key=["u_gene"])
BIOCENTER_CATALOG = Schema("biocenter_catalog", ["b_gene", "b_label"], key=["b_gene"])


def main() -> None:
    orchestra = Orchestra(num_nodes=5)

    unilab = orchestra.add_participant(Participant("unilab", [UNILAB_GENES]))
    mapping = SchemaMapping(
        "unilab_to_biocenter",
        BIOCENTER_CATALOG,
        [UNILAB_GENES],
        outputs=[
            ("b_gene", col("u_gene")),
            ("b_label", concat(col("u_symbol"), lit(" ("), col("u_organism"), lit(")"))),
        ],
    )
    biocenter = orchestra.add_participant(
        Participant("biocenter", [BIOCENTER_CATALOG], mappings=[mapping],
                    trust={"biocenter": 10, "import": 5})
    )

    # UniLab publishes its first batch of curated genes.
    unilab.insert("unilab_genes", "ENSG0001", "BRCA1", "human")
    unilab.insert("unilab_genes", "ENSG0002", "TP53", "human")
    unilab.insert("unilab_genes", "ENSG0003", "EGFR", "mouse")
    epoch = unilab.publish()
    print(f"UniLab published 3 genes at epoch {epoch}")

    # BioCenter has one locally curated label it trusts more than any import.
    biocenter.local_database["biocenter_catalog"].add("ENSG0002", "TP53 [curated]")

    report = biocenter.import_updates()
    print(f"BioCenter import at epoch {report.epoch}: "
          f"{report.total_changes()} changes, "
          f"{len(report.reconciliation.conflicts)} conflict(s) reconciled")
    for gene, label in sorted(biocenter.local_database["biocenter_catalog"].rows):
        print(f"  {gene}: {label}")

    # A later publication only reaches BioCenter on its next import.
    unilab.insert("unilab_genes", "ENSG0004", "MYC", "human")
    unilab.publish()
    report = biocenter.import_updates()
    print(f"\nsecond import picked up {report.total_changes()} new change(s)")

    # Ad-hoc analytics over the shared, versioned storage.
    per_organism = orchestra.run_query(
        "SELECT u_organism, COUNT(*) AS genes FROM unilab_genes GROUP BY u_organism"
    )
    print("\ngenes per organism in the shared storage:")
    for organism, count in sorted(per_organism.rows):
        print(f"  {organism}: {count}")


if __name__ == "__main__":
    main()
