"""OLAP queries over the distributed storage, with a mid-query node failure.

This example mirrors the paper's evaluation workflow: load a scaled-down TPC-H
database onto a simulated 8-node cluster, run some of the paper's queries, and
then kill a node in the middle of a query to compare full restart with
incremental recovery (Figure 21's experiment, one point).

Run with::

    python examples/tpch_analytics_with_failover.py
"""

from repro.cluster import Cluster
from repro.query.service import (
    RECOVERY_INCREMENTAL,
    RECOVERY_RESTART,
    QueryOptions,
)
from repro.workloads import tpch


def run_query(cluster: Cluster, name: str, options: QueryOptions | None = None):
    result = cluster.query(tpch.query(name), options=options)
    stats = result.statistics
    print(f"  {name}: {len(result.rows)} rows, "
          f"{stats.execution_time * 1000:.2f} simulated ms, "
          f"{stats.bytes_total / 1_000_000:.2f} MB traffic, "
          f"phases={stats.phases}, restarts={stats.restarts}")
    return result


def main() -> None:
    print("generating TPC-H data (scale factor 1, scaled down for simulation)...")
    instance = tpch.generate(scale_factor=1.0, seed=42)
    for table in sorted(instance.relations):
        print(f"  {table:10s} {instance.row_count(table):7d} rows")

    cluster = Cluster(num_nodes=8)
    cluster.publish_relations(instance.relation_list())
    print(f"\npublished all tables at epoch {cluster.current_epoch}")

    print("\nrunning the paper's TPC-H queries on 8 nodes:")
    for name in tpch.QUERIES:
        run_query(cluster, name)

    print("\nkilling a node in the middle of Q10 — full restart:")
    cluster_restart = Cluster(num_nodes=8)
    cluster_restart.network.failure_detection_delay = 0.002
    cluster_restart.publish_relations(instance.relation_list())
    cluster_restart.enable_query_processing()
    cluster_restart.fail_node(cluster_restart.addresses[4], at_time=cluster_restart.now + 0.003)
    restart = run_query(cluster_restart, "Q10", QueryOptions(recovery_mode=RECOVERY_RESTART))

    print("\nkilling a node in the middle of Q10 — incremental recovery:")
    cluster_recover = Cluster(num_nodes=8)
    cluster_recover.network.failure_detection_delay = 0.002
    cluster_recover.publish_relations(instance.relation_list())
    cluster_recover.enable_query_processing()
    cluster_recover.fail_node(cluster_recover.addresses[4], at_time=cluster_recover.now + 0.003)
    recovered = run_query(cluster_recover, "Q10", QueryOptions(recovery_mode=RECOVERY_INCREMENTAL))

    assert sorted(restart.rows) == sorted(recovered.rows), "both strategies must agree"
    speedup = restart.statistics.execution_time / max(recovered.statistics.execution_time, 1e-9)
    print(f"\nboth strategies returned identical answers; "
          f"incremental recovery was {speedup:.2f}x the speed of restart")


if __name__ == "__main__":
    main()
