"""Wide-area deployment: constrained bandwidth, node loss and background repair.

Run with::

    python examples/wide_area_replication.py

The collaboration in this example spans institutions connected over the
public Internet rather than a data-centre LAN, which is the setting of the
paper's Figure 17 (per-node bandwidth shaping) and Section VI-C (added
latency).  The script:

1. builds the same 8-node deployment under a Gigabit LAN profile and under a
   shaped WAN profile (800 KB/s per node, 40 ms links) and compares the
   simulated running time and traffic of a distributed join;
2. crashes one of the WAN nodes, shows that the query still returns the exact
   answer via incremental recovery, and
3. runs a PAST-style background replication round to bring every tuple back
   to the configured replication factor.
"""

from repro.cluster import Cluster
from repro.common.types import RelationData, Schema
from repro.net.profiles import LAN_GIGABIT, wan_profile
from repro.query.service import RECOVERY_INCREMENTAL, QueryOptions

QUERY = (
    "SELECT s_site, COUNT(*) AS n_obs, AVG(o_value) AS mean_value "
    "FROM observations, sites WHERE o_site = s_id GROUP BY s_site"
)


def build_relations(num_sites=40, obs_per_site=60):
    sites = RelationData(Schema("sites", ["s_id", "s_site", "s_country"], key=["s_id"]))
    observations = RelationData(
        Schema("observations", ["o_id", "o_site", "o_value"], key=["o_id"])
    )
    for s in range(num_sites):
        sites.add(f"site-{s:03d}", f"station-{s:03d}", f"country-{s % 7}")
        for i in range(obs_per_site):
            observations.add(f"obs-{s:03d}-{i:04d}", f"site-{s:03d}", float((s * 31 + i) % 211))
    return sites, observations


def run_once(profile, name):
    sites, observations = build_relations()
    cluster = Cluster(8, profile=profile, replication_factor=3)
    cluster.publish_relations([sites, observations])
    result = cluster.query(QUERY)
    stats = result.statistics
    print(f"  {name:12s}  {stats.execution_time * 1000:8.2f} simulated ms   "
          f"{stats.bytes_total / 1000:8.1f} KB traffic   {len(result.rows)} groups")
    return cluster, result


def main() -> None:
    print("Distributed join + aggregation, 8 nodes, identical data:")
    run_once(LAN_GIGABIT, "gigabit LAN")
    wan = wan_profile(bandwidth_kbytes_per_second=800, latency_ms=40.0)
    cluster, healthy = run_once(wan, "shaped WAN")

    # ------------------------------------------------------------- node failure
    victim = cluster.addresses[3]
    print(f"\nCrashing {victim} mid-query and recovering incrementally:")
    # On the shaped WAN the query runs for ~300 simulated ms; schedule the
    # crash a third of the way in so it lands while operators hold state.
    cluster.fail_node(victim, at_time=cluster.now + 0.1)
    survived = cluster.query(QUERY, options=QueryOptions(recovery_mode=RECOVERY_INCREMENTAL))
    same = sorted(survived.rows) == sorted(healthy.rows)
    print(f"  failures handled: {survived.statistics.failures_handled}, "
          f"result identical to the failure-free run: {same}")

    # ------------------------------------------------------ background repair
    report = cluster.run_background_replication()
    print("\nBackground (Bloom-filter) replication round after the failure:")
    print(f"  filters exchanged: {report.filters_exchanged}, "
          f"items copied: {report.items_copied}, bytes copied: {report.bytes_copied}")

    # Every tuple should once again live on `replication_factor` live nodes.
    holders: dict[tuple, int] = {}
    for address in cluster.live_addresses():
        for tup in cluster.storage(address).all_local_tuples("observations"):
            key = (tup.tuple_id.key_values, tup.tuple_id.epoch)
            holders[key] = holders.get(key, 0) + 1
    fully = sum(1 for count in holders.values() if count >= 3)
    print(f"  observations on >=3 live nodes: {fully}/{len(holders)}")


if __name__ == "__main__":
    main()
